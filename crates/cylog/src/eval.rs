//! Bottom-up evaluation of compiled CyLog programs: stratified, with a
//! naive mode, a semi-naive mode (delta-driven re-derivation within one
//! fixpoint) and the default incremental mode (cross-batch deltas seeded by
//! the engine from facts inserted since the previous fixpoint).
//!
//! The evaluator reads relations from a [`Database`] whose relation names
//! equal predicate names, and produces derived tuples. Within-run it never
//! mutates relations other than through `insert_all`-style distinct
//! insertion (the incremental driver additionally clears strata it decides
//! to rebuild), which keeps borrow scopes simple and makes the evaluator
//! easy to test in isolation.

use crate::analysis::{CAtom, CExpr, CHeadTerm, CLit, CRule, CompiledProgram, PredId};
use crate::ast::{AggFunc, ArithOp, CmpOp};
use crate::error::CylogError;
use crowd4u_storage::prelude::{Database, Tuple, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Evaluation strategy; see DESIGN.md §5 ablation 1 and ARCHITECTURE.md's
/// "Incremental evaluation contract". `Incremental` behaves like
/// `SemiNaive` within a single from-scratch fixpoint; the difference lives
/// in the engine, which persists derived relations across `run()` calls and
/// seeds the next fixpoint from the facts inserted since the last one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    Naive,
    SemiNaive,
    #[default]
    Incremental,
}

/// Counters describing one evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds across all strata.
    pub rounds: u64,
    /// Distinct new facts derived.
    pub derived: u64,
    /// Rule firings that produced an already-known fact.
    pub duplicates: u64,
    /// Candidate rows enumerated at positive body literals (join work
    /// explored, whether or not the row unified).
    pub firings: u64,
    /// Tuples used to seed cross-batch incremental deltas.
    pub delta_seeded: u64,
    /// Strata skipped because nothing they read changed.
    pub strata_skipped: u64,
    /// Strata rebuilt from scratch during an incremental pass (a changed
    /// predicate reached them through negation or an aggregate).
    pub strata_recomputed: u64,
    /// Full from-scratch recomputations (startup, retraction, mode switch).
    pub recomputes: u64,
}

impl EvalStats {
    pub fn absorb(&mut self, other: EvalStats) {
        self.rounds += other.rounds;
        self.derived += other.derived;
        self.duplicates += other.duplicates;
        self.firings += other.firings;
        self.delta_seeded += other.delta_seeded;
        self.strata_skipped += other.strata_skipped;
        self.strata_recomputed += other.strata_recomputed;
        self.recomputes += other.recomputes;
    }
}

/// Evaluate a scalar expression under bindings. `None` on type error.
fn eval_expr(e: &CExpr, bind: &[Option<Value>]) -> Result<Value, CylogError> {
    match e {
        CExpr::Var(v) => bind[*v as usize]
            .clone()
            .ok_or_else(|| CylogError::Eval("unbound variable in expression".into())),
        CExpr::Const(c) => Ok(c.clone()),
        CExpr::Binary(op, a, b) => {
            let va = eval_expr(a, bind)?;
            let vb = eval_expr(b, bind)?;
            if va.is_null() || vb.is_null() {
                return Ok(Value::Null);
            }
            // String concatenation.
            if *op == ArithOp::Add {
                if let (Some(x), Some(y)) = (va.as_str(), vb.as_str()) {
                    let mut s = String::with_capacity(x.len() + y.len());
                    s.push_str(x);
                    s.push_str(y);
                    return Ok(Value::Str(s));
                }
            }
            if let (Some(x), Some(y)) = (va.as_int(), vb.as_int()) {
                return match op {
                    ArithOp::Add => Ok(Value::Int(x.wrapping_add(y))),
                    ArithOp::Sub => Ok(Value::Int(x.wrapping_sub(y))),
                    ArithOp::Mul => Ok(Value::Int(x.wrapping_mul(y))),
                    ArithOp::Div => {
                        if y == 0 {
                            Err(CylogError::Eval("integer division by zero".into()))
                        } else {
                            Ok(Value::Int(x / y))
                        }
                    }
                };
            }
            match (va.as_float(), vb.as_float()) {
                (Some(x), Some(y)) => Ok(Value::Float(match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                })),
                _ => Err(CylogError::Eval(format!(
                    "arithmetic on non-numeric values {va} and {vb}"
                ))),
            }
        }
    }
}

fn cmp_holds(op: CmpOp, a: &Value, b: &Value) -> bool {
    if a.is_null() || b.is_null() {
        return false; // SQL-style: comparisons with null never hold
    }
    let ord = a.cmp(b);
    match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    }
}

/// Try to unify an atom's terms with a concrete tuple, extending `bind`.
/// Returns the list of variables newly bound (for backtracking), or `None`
/// if the tuple does not match.
fn unify_atom(atom: &CAtom, row: &Tuple, bind: &mut [Option<Value>]) -> Option<Vec<u32>> {
    let mut newly = Vec::new();
    for (t, v) in atom.terms.iter().zip(row.values()) {
        match t {
            crate::analysis::CTerm::Const(c) => {
                if c != v {
                    undo(bind, &newly);
                    return None;
                }
            }
            crate::analysis::CTerm::Var(var) => match &bind[*var as usize] {
                Some(bound) => {
                    if bound != v {
                        undo(bind, &newly);
                        return None;
                    }
                }
                None => {
                    bind[*var as usize] = Some(v.clone());
                    newly.push(*var);
                }
            },
        }
    }
    Some(newly)
}

fn undo(bind: &mut [Option<Value>], vars: &[u32]) {
    for v in vars {
        bind[*v as usize] = None;
    }
}

/// Check whether any tuple of `rows` matches the (fully ground) atom.
fn exists_match(
    atom: &CAtom,
    db: &Database,
    program: &CompiledProgram,
    bind: &[Option<Value>],
) -> bool {
    let name = &program.preds[atom.pred].name;
    let Ok(rel) = db.relation(name) else {
        return false;
    };
    // All vars are bound (analysis guarantees ground negation): build the key.
    let key: Vec<Value> = atom
        .terms
        .iter()
        .map(|t| match t {
            crate::analysis::CTerm::Const(c) => c.clone(),
            crate::analysis::CTerm::Var(v) => bind[*v as usize].clone().expect("ground negation"),
        })
        .collect();
    rel.contains(&Tuple::new(key))
}

/// Callback invoked with each complete binding vector.
type EmitFn<'a> = dyn FnMut(&[Option<Value>]) -> Result<(), CylogError> + 'a;

/// Evaluate a body (already safety-ordered) and call `emit` for every
/// complete binding. `delta_at`, when set, restricts the positive atom at
/// that body index to the given delta tuples (semi-naive rewriting).
#[allow(clippy::too_many_arguments)]
fn eval_body(
    program: &CompiledProgram,
    db: &Database,
    body: &[CLit],
    idx: usize,
    bind: &mut Vec<Option<Value>>,
    delta_at: Option<usize>,
    delta: Option<&[Tuple]>,
    stats: &mut EvalStats,
    emit: &mut EmitFn<'_>,
) -> Result<(), CylogError> {
    if idx == body.len() {
        return emit(bind);
    }
    match &body[idx] {
        CLit::Pos(atom) => {
            let use_delta = delta_at == Some(idx);
            if use_delta {
                let rows = delta.expect("delta provided");
                for row in rows {
                    stats.firings += 1;
                    if let Some(newly) = unify_atom(atom, row, bind) {
                        eval_body(
                            program,
                            db,
                            body,
                            idx + 1,
                            bind,
                            delta_at,
                            delta,
                            stats,
                            emit,
                        )?;
                        undo(bind, &newly);
                    }
                }
            } else {
                let name = &program.preds[atom.pred].name;
                let Ok(rel) = db.relation(name) else {
                    return Ok(()); // no facts yet
                };
                // Bound-column lookup (uses an index when one exists).
                let mut cols = Vec::new();
                let mut key = Vec::new();
                for (i, t) in atom.terms.iter().enumerate() {
                    match t {
                        crate::analysis::CTerm::Const(c) => {
                            cols.push(i);
                            key.push(c.clone());
                        }
                        crate::analysis::CTerm::Var(v) => {
                            if let Some(val) = &bind[*v as usize] {
                                cols.push(i);
                                key.push(val.clone());
                            }
                        }
                    }
                }
                let rows = rel.lookup(&cols, &key);
                for row in rows {
                    stats.firings += 1;
                    if let Some(newly) = unify_atom(atom, row, bind) {
                        eval_body(
                            program,
                            db,
                            body,
                            idx + 1,
                            bind,
                            delta_at,
                            delta,
                            stats,
                            emit,
                        )?;
                        undo(bind, &newly);
                    }
                }
            }
            Ok(())
        }
        CLit::Neg(atom) => {
            if !exists_match(atom, db, program, bind) {
                eval_body(
                    program,
                    db,
                    body,
                    idx + 1,
                    bind,
                    delta_at,
                    delta,
                    stats,
                    emit,
                )?;
            }
            Ok(())
        }
        CLit::Cmp(op, a, b) => {
            let va = eval_expr(a, bind)?;
            let vb = eval_expr(b, bind)?;
            if cmp_holds(*op, &va, &vb) {
                eval_body(
                    program,
                    db,
                    body,
                    idx + 1,
                    bind,
                    delta_at,
                    delta,
                    stats,
                    emit,
                )?;
            }
            Ok(())
        }
        CLit::Let(v, e) => {
            let val = eval_expr(e, bind)?;
            bind[*v as usize] = Some(val);
            eval_body(
                program,
                db,
                body,
                idx + 1,
                bind,
                delta_at,
                delta,
                stats,
                emit,
            )?;
            bind[*v as usize] = None;
            Ok(())
        }
    }
}

/// Build the head tuple from a complete binding (non-aggregate rules).
fn head_tuple(rule: &CRule, bind: &[Option<Value>]) -> Vec<Value> {
    rule.head
        .iter()
        .map(|t| match t {
            CHeadTerm::Var(v) => bind[*v as usize].clone().expect("head var bound"),
            CHeadTerm::Const(c) => c.clone(),
            CHeadTerm::Agg(..) => unreachable!("aggregate handled separately"),
        })
        .collect()
}

/// Evaluate a body restricted to a delta at `pos`, hoisting the delta atom
/// to the front when that is safe. Enumerating the (small) delta first
/// binds its variables before any other atom is touched, so every later
/// positive atom gets a bound-column index lookup instead of a scan — the
/// difference between O(Δ) and O(|relation|·Δ) per delta join. The hoist
/// preserves safety-ordered semantics: every other literal keeps its
/// relative order and only *gains* bindings. The one exception is a `let`
/// assigning a variable the delta atom binds (the assignment would clobber
/// the join binding), so such bodies — and `pos == 0`, where the hoist is
/// a no-op — evaluate in declared order.
#[allow(clippy::too_many_arguments)]
fn eval_body_delta_hoisted(
    program: &CompiledProgram,
    db: &Database,
    body: &[CLit],
    bind: &mut Vec<Option<Value>>,
    pos: usize,
    delta: &[Tuple],
    stats: &mut EvalStats,
    emit: &mut EmitFn<'_>,
) -> Result<(), CylogError> {
    let hoistable = pos > 0
        && match &body[pos] {
            CLit::Pos(atom) => {
                let dvars: Vec<u32> = atom
                    .terms
                    .iter()
                    .filter_map(|t| match t {
                        crate::analysis::CTerm::Var(v) => Some(*v),
                        crate::analysis::CTerm::Const(_) => None,
                    })
                    .collect();
                body.iter().all(|l| match l {
                    CLit::Let(v, _) => !dvars.contains(v),
                    _ => true,
                })
            }
            _ => false,
        };
    if !hoistable {
        return eval_body(
            program,
            db,
            body,
            0,
            bind,
            Some(pos),
            Some(delta),
            stats,
            emit,
        );
    }
    let mut reordered: Vec<CLit> = Vec::with_capacity(body.len());
    reordered.push(body[pos].clone());
    reordered.extend(
        body.iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, l)| l.clone()),
    );
    eval_body(
        program,
        db,
        &reordered,
        0,
        bind,
        Some(0),
        Some(delta),
        stats,
        emit,
    )
}

/// Evaluate a non-aggregate rule, returning derived tuples (possibly with
/// duplicates; the caller dedups on insert).
pub fn eval_rule(
    program: &CompiledProgram,
    db: &Database,
    rule: &CRule,
    delta_at: Option<usize>,
    delta: Option<&[Tuple]>,
    stats: &mut EvalStats,
) -> Result<Vec<Vec<Value>>, CylogError> {
    let mut out = Vec::new();
    let mut bind: Vec<Option<Value>> = vec![None; rule.num_vars];
    let mut emit = |b: &[Option<Value>]| -> Result<(), CylogError> {
        out.push(head_tuple(rule, b));
        Ok(())
    };
    match (delta_at, delta) {
        (Some(pos), Some(d)) => {
            eval_body_delta_hoisted(program, db, &rule.body, &mut bind, pos, d, stats, &mut emit)?
        }
        _ => eval_body(
            program, db, &rule.body, 0, &mut bind, None, None, stats, &mut emit,
        )?,
    }
    Ok(out)
}

/// Evaluate an aggregate rule: group bindings by the plain head terms and
/// fold the aggregate functions.
pub fn eval_agg_rule(
    program: &CompiledProgram,
    db: &Database,
    rule: &CRule,
    stats: &mut EvalStats,
) -> Result<Vec<Vec<Value>>, CylogError> {
    #[derive(Clone)]
    enum Acc {
        Count(i64),
        Sum(f64),
        Min(Option<Value>),
        Max(Option<Value>),
        Avg(f64, i64),
    }
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut bind: Vec<Option<Value>> = vec![None; rule.num_vars];
    let head = &rule.head;
    eval_body(
        program,
        db,
        &rule.body,
        0,
        &mut bind,
        None,
        None,
        stats,
        &mut |b| {
            let key: Vec<Value> = head
                .iter()
                .filter_map(|t| match t {
                    CHeadTerm::Var(v) => Some(b[*v as usize].clone().expect("bound")),
                    CHeadTerm::Const(c) => Some(c.clone()),
                    CHeadTerm::Agg(..) => None,
                })
                .collect();
            let accs = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                head.iter()
                    .filter_map(|t| match t {
                        CHeadTerm::Agg(f, _) => Some(match f {
                            AggFunc::Count => Acc::Count(0),
                            AggFunc::Sum => Acc::Sum(0.0),
                            AggFunc::Min => Acc::Min(None),
                            AggFunc::Max => Acc::Max(None),
                            AggFunc::Avg => Acc::Avg(0.0, 0),
                        }),
                        _ => None,
                    })
                    .collect()
            });
            let mut ai = 0;
            for t in head {
                let CHeadTerm::Agg(_, v) = t else { continue };
                let val = b[*v as usize].clone().expect("agg var bound");
                match &mut accs[ai] {
                    Acc::Count(n) => *n += 1,
                    Acc::Sum(s) => {
                        if let Some(f) = val.as_float() {
                            *s += f;
                        }
                    }
                    Acc::Min(m) => {
                        if !val.is_null() && m.as_ref().is_none_or(|c| &val < c) {
                            *m = Some(val);
                        }
                    }
                    Acc::Max(m) => {
                        if !val.is_null() && m.as_ref().is_none_or(|c| &val > c) {
                            *m = Some(val);
                        }
                    }
                    Acc::Avg(s, n) => {
                        if let Some(f) = val.as_float() {
                            *s += f;
                            *n += 1;
                        }
                    }
                }
                ai += 1;
            }
            Ok(())
        },
    )?;

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group exists");
        let mut row = Vec::with_capacity(head.len());
        let mut ki = 0;
        let mut ai = 0;
        for t in head {
            match t {
                CHeadTerm::Var(_) | CHeadTerm::Const(_) => {
                    row.push(key[ki].clone());
                    ki += 1;
                }
                CHeadTerm::Agg(..) => {
                    let v = match accs[ai].clone() {
                        Acc::Count(n) => Value::Int(n),
                        Acc::Sum(s) => Value::Float(s),
                        Acc::Min(m) | Acc::Max(m) => m.unwrap_or(Value::Null),
                        Acc::Avg(s, n) => {
                            if n == 0 {
                                Value::Null
                            } else {
                                Value::Float(s / n as f64)
                            }
                        }
                    };
                    row.push(v);
                    ai += 1;
                }
            }
        }
        out.push(row);
    }
    Ok(out)
}

/// Run one stratum to fixpoint. `insert` pushes a derived tuple into the
/// database and reports whether it was new.
pub fn eval_stratum(
    program: &CompiledProgram,
    db: &mut Database,
    rule_indices: &[usize],
    mode: EvalMode,
) -> Result<EvalStats, CylogError> {
    let mut stats = EvalStats::default();

    // Aggregate rules first (their inputs live strictly below this stratum).
    for &ri in rule_indices {
        let rule = &program.rules[ri];
        if !rule.is_agg {
            continue;
        }
        let rows = eval_agg_rule(program, db, rule, &mut stats)?;
        insert_all(
            program,
            db,
            rule.head_pred,
            rows,
            &mut stats,
            &mut Vec::new(),
        )?;
    }

    let regular: Vec<usize> = rule_indices
        .iter()
        .copied()
        .filter(|&ri| !program.rules[ri].is_agg)
        .collect();
    if regular.is_empty() {
        return Ok(stats);
    }

    // Which predicates are derived by regular rules *in this stratum*
    // (semi-naive deltas only make sense for those).
    let stratum_preds: HashSet<PredId> = regular
        .iter()
        .map(|&ri| program.rules[ri].head_pred)
        .collect();

    // Round 0: full evaluation.
    let mut delta: HashMap<PredId, Vec<Tuple>> = HashMap::new();
    stats.rounds += 1;
    for &ri in &regular {
        let rule = &program.rules[ri];
        let rows = eval_rule(program, db, rule, None, None, &mut stats)?;
        let mut fresh = Vec::new();
        insert_all(program, db, rule.head_pred, rows, &mut stats, &mut fresh)?;
        delta.entry(rule.head_pred).or_default().extend(fresh);
    }

    // Iterate to fixpoint.
    loop {
        let any = delta.values().any(|v| !v.is_empty());
        if !any {
            return Ok(stats);
        }
        stats.rounds += 1;
        let mut next_delta: HashMap<PredId, Vec<Tuple>> = HashMap::new();
        for &ri in &regular {
            let rule = &program.rules[ri];
            // Does the rule read any predicate derived in this stratum?
            let positions: Vec<(usize, PredId)> = rule
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, l)| match l {
                    CLit::Pos(a) if stratum_preds.contains(&a.pred) => Some((i, a.pred)),
                    _ => None,
                })
                .collect();
            if positions.is_empty() {
                continue; // already fully evaluated in round 0
            }
            match mode {
                EvalMode::Naive => {
                    // Re-evaluate the whole rule against full relations.
                    let rows = eval_rule(program, db, rule, None, None, &mut stats)?;
                    let mut fresh = Vec::new();
                    insert_all(program, db, rule.head_pred, rows, &mut stats, &mut fresh)?;
                    next_delta.entry(rule.head_pred).or_default().extend(fresh);
                }
                EvalMode::SemiNaive | EvalMode::Incremental => {
                    for (pos, pred) in &positions {
                        let Some(d) = delta.get(pred) else { continue };
                        if d.is_empty() {
                            continue;
                        }
                        let rows = eval_rule(program, db, rule, Some(*pos), Some(d), &mut stats)?;
                        let mut fresh = Vec::new();
                        insert_all(program, db, rule.head_pred, rows, &mut stats, &mut fresh)?;
                        next_delta.entry(rule.head_pred).or_default().extend(fresh);
                    }
                }
            }
        }
        delta = next_delta;
    }
}

fn insert_all(
    program: &CompiledProgram,
    db: &mut Database,
    pred: PredId,
    rows: Vec<Vec<Value>>,
    stats: &mut EvalStats,
    fresh: &mut Vec<Tuple>,
) -> Result<(), CylogError> {
    let name = &program.preds[pred].name;
    let rel = db.relation_mut(name)?;
    for row in rows {
        let t = Tuple::new(row);
        let (_, new) = rel.insert_distinct(t.clone())?;
        if new {
            stats.derived += 1;
            fresh.push(t);
        } else {
            stats.duplicates += 1;
        }
    }
    Ok(())
}

/// Run the whole program (all strata in order) to fixpoint.
pub fn eval_program(
    program: &CompiledProgram,
    db: &mut Database,
    mode: EvalMode,
) -> Result<EvalStats, CylogError> {
    let mut stats = EvalStats::default();
    for stratum in &program.strata {
        stats.absorb(eval_stratum(program, db, stratum, mode)?);
    }
    Ok(stats)
}

/// Run one stratum starting from an externally seeded delta instead of a
/// full round-0 evaluation: each rule is joined once per body position whose
/// predicate appears in `seed` (the other positions see full relations, so
/// every derivation using at least one seeded tuple is found; derivations
/// using none were already present at the previous fixpoint). Aggregate
/// rules are skipped — the caller guarantees their inputs are unchanged by
/// rebuilding the stratum instead when they are not.
///
/// Returns the stats and the distinct new tuples per head predicate.
pub fn eval_stratum_seeded(
    program: &CompiledProgram,
    db: &mut Database,
    rule_indices: &[usize],
    seed: &HashMap<PredId, Vec<Tuple>>,
) -> Result<(EvalStats, HashMap<PredId, Vec<Tuple>>), CylogError> {
    let mut stats = EvalStats::default();
    let mut changed_out: HashMap<PredId, Vec<Tuple>> = HashMap::new();

    let regular: Vec<usize> = rule_indices
        .iter()
        .copied()
        .filter(|&ri| !program.rules[ri].is_agg)
        .collect();
    if regular.is_empty() {
        return Ok((stats, changed_out));
    }
    let stratum_preds: HashSet<PredId> = regular
        .iter()
        .map(|&ri| program.rules[ri].head_pred)
        .collect();

    // Round 0: join each seeded delta against full relations, one body
    // position at a time (distinct insertion dedups derivations that use
    // more than one seeded tuple).
    let mut delta: HashMap<PredId, Vec<Tuple>> = HashMap::new();
    stats.rounds += 1;
    for &ri in &regular {
        let rule = &program.rules[ri];
        for (pos, lit) in rule.body.iter().enumerate() {
            let CLit::Pos(atom) = lit else { continue };
            let Some(d) = seed.get(&atom.pred) else {
                continue;
            };
            if d.is_empty() {
                continue;
            }
            let rows = eval_rule(program, db, rule, Some(pos), Some(d), &mut stats)?;
            let mut fresh = Vec::new();
            insert_all(program, db, rule.head_pred, rows, &mut stats, &mut fresh)?;
            delta.entry(rule.head_pred).or_default().extend(fresh);
        }
    }

    // Iterate within the stratum exactly as semi-naive does.
    loop {
        for (&p, d) in &delta {
            if !d.is_empty() {
                changed_out.entry(p).or_default().extend(d.iter().cloned());
            }
        }
        if delta.values().all(|v| v.is_empty()) {
            return Ok((stats, changed_out));
        }
        stats.rounds += 1;
        let mut next_delta: HashMap<PredId, Vec<Tuple>> = HashMap::new();
        for &ri in &regular {
            let rule = &program.rules[ri];
            for (pos, lit) in rule.body.iter().enumerate() {
                let CLit::Pos(atom) = lit else { continue };
                if !stratum_preds.contains(&atom.pred) {
                    continue;
                }
                let Some(d) = delta.get(&atom.pred) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                let rows = eval_rule(program, db, rule, Some(pos), Some(d), &mut stats)?;
                let mut fresh = Vec::new();
                insert_all(program, db, rule.head_pred, rows, &mut stats, &mut fresh)?;
                next_delta.entry(rule.head_pred).or_default().extend(fresh);
            }
        }
        delta = next_delta;
    }
}

/// What one cross-batch incremental pass did.
#[derive(Debug, Default)]
pub struct IncrementalOutcome {
    pub stats: EvalStats,
    /// Every tuple that is new since the previous fixpoint, per predicate:
    /// the seed itself plus everything derived from it. For rebuilt strata
    /// the head's full relation stands in for its (unknown) delta.
    pub changed: HashMap<PredId, Vec<Tuple>>,
    /// True when any stratum was rebuilt — derived relations may have
    /// *shrunk*, so demand computation must not rely on deltas alone.
    pub any_rebuild: bool,
}

/// Advance an already-at-fixpoint database to the next fixpoint given the
/// base facts inserted since (`seed`). Strata that cannot see a changed
/// predicate are skipped; strata reached only through positive non-aggregate
/// atoms are delta-joined; strata reached through negation or aggregates —
/// where new input can *remove* conclusions — are cleared and rebuilt, as is
/// any stratum positively reading a rebuilt (hence possibly shrunken) head.
pub fn eval_program_incremental(
    program: &CompiledProgram,
    db: &mut Database,
    seed: &BTreeMap<PredId, Vec<Tuple>>,
) -> Result<IncrementalOutcome, CylogError> {
    let mut out = IncrementalOutcome::default();
    let mut rebuilt: HashSet<PredId> = HashSet::new();
    for (&p, rows) in seed {
        out.stats.delta_seeded += rows.len() as u64;
        if !rows.is_empty() {
            out.changed
                .entry(p)
                .or_default()
                .extend(rows.iter().cloned());
        }
    }
    for (si, rule_idx) in program.strata.iter().enumerate() {
        let info = &program.stratum_info[si];
        let dirty =
            |p: &PredId| rebuilt.contains(p) || out.changed.get(p).is_some_and(|v| !v.is_empty());
        let dirty_pos = info.pos_reads.iter().any(&dirty);
        let dirty_unsafe = info.unsafe_reads.iter().any(&dirty);
        let rebuilt_pos = info.pos_reads.iter().any(|p| rebuilt.contains(p));
        if !dirty_pos && !dirty_unsafe {
            out.stats.strata_skipped += 1;
            continue;
        }
        if dirty_unsafe || rebuilt_pos {
            // Rebuild: clear the stratum's heads, restore their program
            // facts, and run the ordinary from-scratch fixpoint for it.
            for &hp in &info.heads {
                db.relation_mut(&program.preds[hp].name)?.clear();
            }
            for (pid, vals) in &program.facts {
                if info.heads.contains(pid) {
                    db.relation_mut(&program.preds[*pid].name)?
                        .insert_distinct(Tuple::new(vals.clone()))?;
                }
            }
            out.stats
                .absorb(eval_stratum(program, db, rule_idx, EvalMode::SemiNaive)?);
            out.stats.strata_recomputed += 1;
            out.any_rebuild = true;
            for &hp in &info.heads {
                rebuilt.insert(hp);
                out.changed
                    .insert(hp, db.relation(&program.preds[hp].name)?.to_rows());
            }
        } else {
            let mut stratum_seed: HashMap<PredId, Vec<Tuple>> = HashMap::new();
            for p in &info.pos_reads {
                if let Some(rows) = out.changed.get(p) {
                    if !rows.is_empty() {
                        stratum_seed.insert(*p, rows.clone());
                    }
                }
            }
            let (s, fresh) = eval_stratum_seeded(program, db, rule_idx, &stratum_seed)?;
            out.stats.absorb(s);
            for (p, rows) in fresh {
                out.changed.entry(p).or_default().extend(rows);
            }
        }
    }
    Ok(out)
}

/// Compute open-predicate demands: the distinct input bindings each rule
/// requests from the crowd, given the current database.
pub fn compute_demands(
    program: &CompiledProgram,
    db: &Database,
) -> Result<Vec<(PredId, Vec<Value>)>, CylogError> {
    let mut out: Vec<(PredId, Vec<Value>)> = Vec::new();
    let mut seen: HashSet<(PredId, Vec<Value>)> = HashSet::new();
    let mut stats = EvalStats::default();
    for rule in &program.rules {
        for demand in &rule.demands {
            let mut bind: Vec<Option<Value>> = vec![None; demand.num_vars];
            let input_terms = &demand.input_terms;
            let open_pred = demand.open_pred;
            let mut emit = |b: &[Option<Value>]| -> Result<(), CylogError> {
                let key: Vec<Value> = input_terms
                    .iter()
                    .map(|t| match t {
                        crate::analysis::CTerm::Const(c) => c.clone(),
                        crate::analysis::CTerm::Var(v) => {
                            b[*v as usize].clone().expect("demand inputs bound")
                        }
                    })
                    .collect();
                if seen.insert((open_pred, key.clone())) {
                    out.push((open_pred, key));
                }
                Ok(())
            };
            eval_body(
                program,
                db,
                &demand.sub_body,
                0,
                &mut bind,
                None,
                None,
                &mut stats,
                &mut emit,
            )?;
        }
    }
    Ok(out)
}

/// Compute only the demands reachable from `changed` predicates: each demand
/// sub-body is evaluated once per positive position whose predicate changed,
/// restricted to that predicate's delta. Sound as long as no relation shrank
/// since the previous fixpoint — a demand derivable without any new tuple
/// was already derivable then and has already been posed (or answered). The
/// engine falls back to [`compute_demands`] whenever a stratum was rebuilt.
pub fn compute_demands_delta(
    program: &CompiledProgram,
    db: &Database,
    changed: &HashMap<PredId, Vec<Tuple>>,
) -> Result<Vec<(PredId, Vec<Value>)>, CylogError> {
    let mut out: Vec<(PredId, Vec<Value>)> = Vec::new();
    let mut seen: HashSet<(PredId, Vec<Value>)> = HashSet::new();
    let mut stats = EvalStats::default();
    for rule in &program.rules {
        for demand in &rule.demands {
            for (pos, lit) in demand.sub_body.iter().enumerate() {
                let CLit::Pos(atom) = lit else { continue };
                let Some(d) = changed.get(&atom.pred) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                let mut bind: Vec<Option<Value>> = vec![None; demand.num_vars];
                let input_terms = &demand.input_terms;
                let open_pred = demand.open_pred;
                let mut emit = |b: &[Option<Value>]| -> Result<(), CylogError> {
                    let key: Vec<Value> = input_terms
                        .iter()
                        .map(|t| match t {
                            crate::analysis::CTerm::Const(c) => c.clone(),
                            crate::analysis::CTerm::Var(v) => {
                                b[*v as usize].clone().expect("demand inputs bound")
                            }
                        })
                        .collect();
                    if seen.insert((open_pred, key.clone())) {
                        out.push((open_pred, key));
                    }
                    Ok(())
                };
                eval_body_delta_hoisted(
                    program,
                    db,
                    &demand.sub_body,
                    &mut bind,
                    pos,
                    d,
                    &mut stats,
                    &mut emit,
                )?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::compile;
    use crate::parser::parse;
    use crowd4u_storage::prelude::*;

    fn setup(src: &str) -> (CompiledProgram, Database) {
        let program = compile(&parse(src).unwrap()).unwrap();
        let mut db = Database::new();
        for info in &program.preds {
            let cols: Vec<Column> = info
                .col_names
                .iter()
                .zip(&info.col_types)
                .map(|(n, t)| Column::nullable(n.clone(), *t))
                .collect();
            db.create_relation(&info.name, Schema::new(cols).unwrap())
                .unwrap();
        }
        for (pid, vals) in &program.facts {
            db.relation_mut(&program.preds[*pid].name)
                .unwrap()
                .insert_distinct(Tuple::new(vals.clone()))
                .unwrap();
        }
        (program, db)
    }

    fn rows(db: &Database, name: &str) -> Vec<Tuple> {
        let mut r = db.relation(name).unwrap().to_rows();
        r.sort();
        r
    }

    #[test]
    fn transitive_closure() {
        let (p, mut db) = setup(
            "rel edge(a: int, b: int).\nrel path(a: int, b: int).\n\
             edge(1, 2). edge(2, 3). edge(3, 4).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n",
        );
        let stats = eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "path").len(), 6); // 1-2,1-3,1-4,2-3,2-4,3-4
        assert_eq!(stats.derived, 6);
        assert!(stats.rounds >= 3);
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let src = "rel edge(a: int, b: int).\nrel path(a: int, b: int).\n\
             edge(1, 2). edge(2, 3). edge(3, 1). edge(3, 4). edge(4, 5).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n";
        let (p1, mut db1) = setup(src);
        let (p2, mut db2) = setup(src);
        let s1 = eval_program(&p1, &mut db1, EvalMode::Naive).unwrap();
        let s2 = eval_program(&p2, &mut db2, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db1, "path"), rows(&db2, "path"));
        assert_eq!(s1.derived, s2.derived);
        // Semi-naive explores fewer join candidates on recursive programs.
        assert!(
            s2.firings <= s1.firings,
            "semi-naive should not do more work"
        );
    }

    #[test]
    fn negation_stratified() {
        let (p, mut db) = setup(
            "rel node(x: int).\nrel edge(a: int, b: int).\n\
             rel reachable(x: int).\nrel isolated(x: int).\n\
             node(1). node(2). node(3).\n\
             edge(1, 2).\n\
             reachable(X) :- edge(_, X).\n\
             reachable(X) :- edge(X, _).\n\
             isolated(X) :- node(X), not reachable(X).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "isolated"), vec![tuple![3i64]]);
    }

    #[test]
    fn comparisons_and_lets() {
        let (p, mut db) = setup(
            "rel score(w: id, s: float).\nrel grade(w: id, g: float).\n\
             score(#1, 0.5). score(#2, 0.9).\n\
             grade(W, G) :- score(W, S), S >= 0.6, G := S * 100.0.\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        let g = rows(&db, "grade");
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], tuple![2u64, 90.0f64]);
    }

    #[test]
    fn string_concat() {
        let (p, mut db) = setup(
            "rel name(n: str).\nrel greet(g: str).\n\
             name(\"ann\").\n\
             greet(G) :- name(N), G := \"hi \" + N.\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "greet"), vec![tuple!["hi ann"]]);
    }

    #[test]
    fn aggregates_group_correctly() {
        let (p, mut db) = setup(
            "rel w(team: str, score: float).\n\
             rel summary(team: str, n: int, avg: float, best: float).\n\
             w(\"a\", 0.5). w(\"a\", 0.7). w(\"b\", 1.0).\n\
             summary(T, count<S>, avg<S>, max<S>) :- w(T, S).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        let s = rows(&db, "summary");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0][0], Value::Str("a".into()));
        assert_eq!(s[0][1], Value::Int(2));
        assert!((s[0][2].as_float().unwrap() - 0.6).abs() < 1e-9);
        assert_eq!(s[0][3], Value::Float(0.7));
        assert_eq!(s[1], tuple!["b", 1i64, 1.0f64, 1.0f64]);
    }

    #[test]
    fn aggregate_feeding_rule_in_same_run() {
        let (p, mut db) = setup(
            "rel w(team: str, score: float).\n\
             rel n(team: str, c: int).\n\
             rel big(team: str).\n\
             w(\"a\", 0.5). w(\"a\", 0.7). w(\"b\", 1.0).\n\
             n(T, count<S>) :- w(T, S).\n\
             big(T) :- n(T, C), C >= 2.\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "big"), vec![tuple!["a"]]);
    }

    #[test]
    fn division_by_zero_surfaces() {
        let (p, mut db) = setup(
            "rel a(x: int).\nrel r(x: int).\n\
             a(1). a(0).\n\
             r(Z) :- a(X), Z := 10 / X.\n",
        );
        let err = eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn demands_computed_and_shrink_with_answers() {
        let (p, mut db) = setup(
            "rel sentence(s: str).\n\
             open translate(s: str) -> (t: str).\n\
             rel out(s: str, t: str).\n\
             sentence(\"hello\"). sentence(\"bye\").\n\
             out(S, T) :- sentence(S), translate(S, T).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        let demands = compute_demands(&p, &db).unwrap();
        assert_eq!(demands.len(), 2);
        // Supply one answer: out derives for it; demand remains for the other.
        db.relation_mut("translate")
            .unwrap()
            .insert_distinct(tuple!["hello", "bonjour"])
            .unwrap();
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "out"), vec![tuple!["hello", "bonjour"]]);
        // Demands are still both "wanted" by the rule; the engine layer
        // dedups against already-asked questions.
        let demands = compute_demands(&p, &db).unwrap();
        assert_eq!(demands.len(), 2);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let (p, mut db) = setup(
            "rel e(a: int, b: int).\nrel selfloop(x: int).\n\
             e(1, 1). e(1, 2). e(3, 3).\n\
             selfloop(X) :- e(X, X).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "selfloop"), vec![tuple![1i64], tuple![3i64]]);
    }

    #[test]
    fn constants_in_atoms_filter() {
        let (p, mut db) = setup(
            "rel e(a: int, b: str).\nrel hit(x: int).\n\
             e(1, \"x\"). e(2, \"y\").\n\
             hit(A) :- e(A, \"x\").\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "hit"), vec![tuple![1i64]]);
    }

    #[test]
    fn null_comparisons_never_hold() {
        let (p, mut db) = setup(
            "rel v(x: int).\nrel r(x: int).\n\
             v(null). v(5).\n\
             r(X) :- v(X), X > 0.\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "r"), vec![tuple![5i64]]);
    }

    #[test]
    fn zero_arity_predicates() {
        let (p, mut db) = setup(
            "rel go().\nrel done().\n\
             go().\n\
             done() :- go().\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(db.relation("done").unwrap().len(), 1);
    }

    #[test]
    fn stats_absorb() {
        let mut a = EvalStats {
            rounds: 1,
            derived: 2,
            duplicates: 3,
            firings: 4,
            delta_seeded: 5,
            strata_skipped: 6,
            strata_recomputed: 7,
            recomputes: 8,
        };
        a.absorb(EvalStats {
            rounds: 10,
            derived: 20,
            duplicates: 30,
            firings: 40,
            delta_seeded: 50,
            strata_skipped: 60,
            strata_recomputed: 70,
            recomputes: 80,
        });
        assert_eq!(a.rounds, 11);
        assert_eq!(a.derived, 22);
        assert_eq!(a.duplicates, 33);
        assert_eq!(a.firings, 44);
        assert_eq!(a.delta_seeded, 55);
        assert_eq!(a.strata_skipped, 66);
        assert_eq!(a.strata_recomputed, 77);
        assert_eq!(a.recomputes, 88);
    }

    /// Cross-batch delta pass on a recursive program: after the initial
    /// fixpoint, seeding one new edge must derive exactly the paths that
    /// use it, without touching anything else.
    #[test]
    fn incremental_pass_extends_closure() {
        let (p, mut db) = setup(
            "rel edge(a: int, b: int).\nrel path(a: int, b: int).\n\
             edge(1, 2). edge(2, 3).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "path").len(), 3);
        // New base fact arrives: edge(3, 4).
        let new = tuple![3i64, 4i64];
        db.relation_mut("edge")
            .unwrap()
            .insert_distinct(new.clone())
            .unwrap();
        let edge = p.pred("edge").unwrap();
        let mut seed = BTreeMap::new();
        seed.insert(edge, vec![new]);
        let outcome = eval_program_incremental(&p, &mut db, &seed).unwrap();
        assert!(!outcome.any_rebuild);
        assert_eq!(outcome.stats.delta_seeded, 1);
        // 1-4, 2-4, 3-4 are new.
        assert_eq!(outcome.stats.derived, 3);
        assert_eq!(rows(&db, "path").len(), 6);
        let path = p.pred("path").unwrap();
        let mut changed = outcome.changed.get(&path).cloned().unwrap();
        changed.sort();
        assert_eq!(
            changed,
            vec![tuple![1i64, 4i64], tuple![2i64, 4i64], tuple![3i64, 4i64]]
        );
    }

    /// An empty seed leaves the database untouched and skips every stratum.
    #[test]
    fn incremental_pass_with_empty_seed_skips_everything() {
        let (p, mut db) = setup(
            "rel edge(a: int, b: int).\nrel path(a: int, b: int).\n\
             edge(1, 2).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        let before = rows(&db, "path");
        let outcome = eval_program_incremental(&p, &mut db, &BTreeMap::new()).unwrap();
        assert_eq!(outcome.stats.strata_skipped as usize, p.strata.len());
        assert_eq!(outcome.stats.derived, 0);
        assert_eq!(rows(&db, "path"), before);
    }

    /// A changed predicate reaching a stratum through negation forces that
    /// stratum to be rebuilt — and the rebuild may *shrink* its head.
    #[test]
    fn incremental_pass_rebuilds_negation_stratum() {
        let (p, mut db) = setup(
            "rel node(x: int).\nrel edge(a: int, b: int).\n\
             rel reachable(x: int).\nrel isolated(x: int).\n\
             node(1). node(2). node(3).\n\
             edge(1, 2).\n\
             reachable(X) :- edge(_, X).\n\
             reachable(X) :- edge(X, _).\n\
             isolated(X) :- node(X), not reachable(X).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "isolated"), vec![tuple![3i64]]);
        // edge(2, 3) makes node 3 reachable: isolated must shrink to empty.
        let new = tuple![2i64, 3i64];
        db.relation_mut("edge")
            .unwrap()
            .insert_distinct(new.clone())
            .unwrap();
        let mut seed = BTreeMap::new();
        seed.insert(p.pred("edge").unwrap(), vec![new]);
        let outcome = eval_program_incremental(&p, &mut db, &seed).unwrap();
        assert!(outcome.any_rebuild);
        assert!(outcome.stats.strata_recomputed >= 1);
        assert!(rows(&db, "isolated").is_empty());
    }

    /// Aggregate strata are rebuilt, not delta-joined: a new input row must
    /// replace the old group row rather than coexist with it.
    #[test]
    fn incremental_pass_rebuilds_aggregate_stratum() {
        let (p, mut db) = setup(
            "rel w(team: str, score: float).\n\
             rel n(team: str, c: int).\n\
             w(\"a\", 0.5).\n\
             n(T, count<S>) :- w(T, S).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        assert_eq!(rows(&db, "n"), vec![tuple!["a", 1i64]]);
        let new = tuple!["a", 0.7f64];
        db.relation_mut("w")
            .unwrap()
            .insert_distinct(new.clone())
            .unwrap();
        let mut seed = BTreeMap::new();
        seed.insert(p.pred("w").unwrap(), vec![new]);
        let outcome = eval_program_incremental(&p, &mut db, &seed).unwrap();
        assert!(outcome.any_rebuild);
        assert_eq!(rows(&db, "n"), vec![tuple!["a", 2i64]]);
    }

    /// Delta demand computation finds exactly the demands that need a new
    /// tuple, and none that were already derivable.
    #[test]
    fn delta_demands_match_full_recomputation_on_growth() {
        let (p, mut db) = setup(
            "rel sentence(s: str).\n\
             open translate(s: str) -> (t: str).\n\
             rel out(s: str, t: str).\n\
             sentence(\"hello\").\n\
             out(S, T) :- sentence(S), translate(S, T).\n",
        );
        eval_program(&p, &mut db, EvalMode::SemiNaive).unwrap();
        let new = tuple!["bye"];
        db.relation_mut("sentence")
            .unwrap()
            .insert_distinct(new.clone())
            .unwrap();
        let sentence = p.pred("sentence").unwrap();
        let mut seed = BTreeMap::new();
        seed.insert(sentence, vec![new]);
        let outcome = eval_program_incremental(&p, &mut db, &seed).unwrap();
        let delta = compute_demands_delta(&p, &db, &outcome.changed).unwrap();
        assert_eq!(
            delta,
            vec![(p.pred("translate").unwrap(), vec!["bye".into()])]
        );
        // The full set contains the delta set plus the already-known demand.
        let full = compute_demands(&p, &db).unwrap();
        assert_eq!(full.len(), 2);
        for d in &delta {
            assert!(full.contains(d));
        }
    }
}
