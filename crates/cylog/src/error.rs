//! Error type for the CyLog language pipeline.

use crate::token::Pos;
use crowd4u_storage::prelude::StorageError;
use std::fmt;

/// Errors from lexing, parsing, semantic analysis or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CylogError {
    Lex {
        pos: Pos,
        message: String,
    },
    Parse {
        pos: Pos,
        message: String,
    },
    /// Semantic errors (undeclared predicate, arity/type mismatch, unsafe
    /// rule, unstratifiable program…).
    Semantic(String),
    /// Runtime evaluation errors.
    Eval(String),
    Storage(StorageError),
}

impl fmt::Display for CylogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CylogError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            CylogError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            CylogError::Semantic(m) => write!(f, "semantic error: {m}"),
            CylogError::Eval(m) => write!(f, "evaluation error: {m}"),
            CylogError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CylogError {}

impl From<StorageError> for CylogError {
    fn from(e: StorageError) -> Self {
        CylogError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let p = Pos { line: 1, col: 2 };
        for e in [
            CylogError::Lex {
                pos: p,
                message: "x".into(),
            },
            CylogError::Parse {
                pos: p,
                message: "x".into(),
            },
            CylogError::Semantic("x".into()),
            CylogError::Eval("x".into()),
            CylogError::Storage(StorageError::NoSuchRelation("r".into())),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
