//! Hand-written lexer for CyLog source text.

use crate::error::CylogError;
use crate::token::{Pos, Spanned, Tok};

pub struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            chars: src.chars().peekable(),
            pos: Pos::start(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // possible // comment
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else {
                        return;
                    }
                }
                Some('%') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> CylogError {
        CylogError::Lex {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn lex_string(&mut self, start: Pos) -> Result<Spanned, CylogError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some(other) => return Err(self.err(format!("bad escape `\\{other}`"))),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Spanned {
            tok: Tok::Str(s),
            pos: start,
        })
    }

    fn lex_number(&mut self, first: char, start: Pos) -> Result<Spanned, CylogError> {
        let mut text = String::new();
        text.push(first);
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // Lookahead: `.` followed by a digit is a decimal point,
                // otherwise it terminates the clause (e.g. `f(1).`).
                let mut clone = self.chars.clone();
                clone.next();
                match clone.peek() {
                    Some(d) if d.is_ascii_digit() => {
                        is_float = true;
                        text.push('.');
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == 'e' || c == 'E' {
                // exponent
                let mut clone = self.chars.clone();
                clone.next();
                let next = clone.peek().copied();
                let ok = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('+') | Some('-') => {
                        clone.next();
                        matches!(clone.peek(), Some(d) if d.is_ascii_digit())
                    }
                    _ => false,
                };
                if !ok {
                    break;
                }
                is_float = true;
                text.push(c);
                self.bump();
                if let Some(sign @ ('+' | '-')) = self.peek() {
                    text.push(sign);
                    self.bump();
                }
            } else {
                break;
            }
        }
        let tok = if is_float {
            Tok::Float(
                text.parse::<f64>()
                    .map_err(|e| self.err(format!("bad float `{text}`: {e}")))?,
            )
        } else {
            Tok::Int(
                text.parse::<i64>()
                    .map_err(|e| self.err(format!("bad integer `{text}`: {e}")))?,
            )
        };
        Ok(Spanned { tok, pos: start })
    }

    fn lex_word(&mut self, first: char, start: Pos) -> Spanned {
        let mut text = String::new();
        text.push(first);
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let tok = match text.as_str() {
            "rel" => Tok::KwRel,
            "open" => Tok::KwOpen,
            "not" => Tok::KwNot,
            "true" => Tok::KwTrue,
            "false" => Tok::KwFalse,
            "null" => Tok::KwNull,
            "points" => Tok::KwPoints,
            "by" => Tok::KwBy,
            _ => {
                let head = text.chars().next().expect("nonempty");
                if head.is_uppercase() || head == '_' {
                    Tok::Var(text)
                } else {
                    Tok::Ident(text)
                }
            }
        };
        Spanned { tok, pos: start }
    }

    pub fn tokenize(mut self) -> Result<Vec<Spanned>, CylogError> {
        let _ = self.src; // keep for future span slicing
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.bump() else {
                out.push(Spanned {
                    tok: Tok::Eof,
                    pos: start,
                });
                return Ok(out);
            };
            let sp = match c {
                '(' => Spanned {
                    tok: Tok::LParen,
                    pos: start,
                },
                ')' => Spanned {
                    tok: Tok::RParen,
                    pos: start,
                },
                ',' => Spanned {
                    tok: Tok::Comma,
                    pos: start,
                },
                '.' => Spanned {
                    tok: Tok::Dot,
                    pos: start,
                },
                '+' => Spanned {
                    tok: Tok::Plus,
                    pos: start,
                },
                '*' => Spanned {
                    tok: Tok::StarTok,
                    pos: start,
                },
                '/' => Spanned {
                    tok: Tok::Slash,
                    pos: start,
                },
                '?' => Spanned {
                    tok: Tok::Question,
                    pos: start,
                },
                '=' => Spanned {
                    tok: Tok::Eq,
                    pos: start,
                },
                '-' => {
                    if self.peek() == Some('>') {
                        self.bump();
                        Spanned {
                            tok: Tok::Arrow,
                            pos: start,
                        }
                    } else {
                        Spanned {
                            tok: Tok::Minus,
                            pos: start,
                        }
                    }
                }
                ':' => match self.peek() {
                    Some('-') => {
                        self.bump();
                        Spanned {
                            tok: Tok::ColonDash,
                            pos: start,
                        }
                    }
                    Some('=') => {
                        self.bump();
                        Spanned {
                            tok: Tok::Assign,
                            pos: start,
                        }
                    }
                    _ => Spanned {
                        tok: Tok::Colon,
                        pos: start,
                    },
                },
                '!' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        Spanned {
                            tok: Tok::Ne,
                            pos: start,
                        }
                    } else {
                        return Err(self.err("expected `=` after `!`"));
                    }
                }
                '<' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        Spanned {
                            tok: Tok::Le,
                            pos: start,
                        }
                    } else {
                        Spanned {
                            tok: Tok::LAngle,
                            pos: start,
                        }
                    }
                }
                '>' => {
                    if self.peek() == Some('=') {
                        self.bump();
                        Spanned {
                            tok: Tok::Ge,
                            pos: start,
                        }
                    } else {
                        Spanned {
                            tok: Tok::RAngle,
                            pos: start,
                        }
                    }
                }
                '"' => self.lex_string(start)?,
                '#' => {
                    let mut digits = String::new();
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            digits.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if digits.is_empty() {
                        return Err(self.err("expected digits after `#`"));
                    }
                    Spanned {
                        tok: Tok::IdLit(
                            digits
                                .parse::<u64>()
                                .map_err(|e| self.err(format!("bad id literal: {e}")))?,
                        ),
                        pos: start,
                    }
                }
                d if d.is_ascii_digit() => self.lex_number(d, start)?,
                w if w.is_alphabetic() || w == '_' => self.lex_word(w, start),
                other => return Err(self.err(format!("unexpected character `{other}`"))),
            };
            out.push(sp);
        }
    }
}

/// Convenience: tokenize a whole source string.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, CylogError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_clause() {
        assert_eq!(
            toks("p(X) :- q(X)."),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::ColonDash,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("rel open not true false null points by relx"),
            vec![
                Tok::KwRel,
                Tok::KwOpen,
                Tok::KwNot,
                Tok::KwTrue,
                Tok::KwFalse,
                Tok::KwNull,
                Tok::KwPoints,
                Tok::KwBy,
                Tok::Ident("relx".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn variables_start_upper_or_underscore() {
        assert_eq!(
            toks("X _y abc Abc"),
            vec![
                Tok::Var("X".into()),
                Tok::Var("_y".into()),
                Tok::Ident("abc".into()),
                Tok::Var("Abc".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2 7."),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Int(7),
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn dot_after_number_is_clause_end() {
        // `f(1).` must lex Int(1) Dot, not Float(1.)
        assert_eq!(
            toks("f(1)."),
            vec![
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Int(1),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""hi" "a\nb" "q\"q" "back\\""#),
            vec![
                Tok::Str("hi".into()),
                Tok::Str("a\nb".into()),
                Tok::Str("q\"q".into()),
                Tok::Str("back\\".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn id_literals() {
        assert_eq!(toks("#42"), vec![Tok::IdLit(42), Tok::Eof]);
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks(":- := -> = != < <= > >= + - * / ?"),
            vec![
                Tok::ColonDash,
                Tok::Assign,
                Tok::Arrow,
                Tok::Eq,
                Tok::Ne,
                Tok::LAngle,
                Tok::Le,
                Tok::RAngle,
                Tok::Ge,
                Tok::Plus,
                Tok::Minus,
                Tok::StarTok,
                Tok::Slash,
                Tok::Question,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("p(X). // trailing\n% full line\nq(Y)."),
            toks("p(X). q(Y).")
        );
        // a lone slash is still an operator
        assert_eq!(
            toks("1 / 2"),
            vec![Tok::Int(1), Tok::Slash, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize(r#""bad \q escape""#).is_err());
        assert!(tokenize("!x").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn positions_tracked() {
        let ts = tokenize("p\n  q").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }
}
