//! Deterministic random source for simulations.
//!
//! Wraps a seeded ChaCha-based `StdRng` and adds the distributions the crowd
//! simulator needs (gaussian quality noise, exponential inter-arrival times,
//! weighted choices) without pulling in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded RNG with simulation-oriented helpers. Two `SimRng`s built from the
/// same seed produce identical streams.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derive an independent child stream (for per-worker randomness that
    /// must not depend on scheduling order).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. Requires `lo < hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`. Requires `lo < hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Requires `n > 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0,1] to avoid ln(0)
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with mean/σ.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Normal clamped into `[lo, hi]` (quality scores live in `[0,1]`).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Exponential with the given mean (inter-arrival times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.unit(); // (0,1]
        -mean * u.ln()
    }

    /// Pick a reference uniformly from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index proportionally to non-negative weights.
    /// Returns `None` if all weights are zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
        let mut c = SimRng::seed_from(43);
        let va: Vec<f64> = (0..10).map(|_| a.unit()).collect();
        let vc: Vec<f64> = (0..10).map(|_| c.unit()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        let mut fa = a.fork(7);
        let mut fb = b.fork(7);
        for _ in 0..20 {
            assert_eq!(fa.unit(), fb.unit());
        }
        let mut other = SimRng::seed_from(1).fork(8);
        assert_ne!(fa.unit(), other.unit());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::seed_from(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let got = total / n as f64;
        assert!((got - mean).abs() < 0.2, "mean {got}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn normal_clamped_stays_in_bounds() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = r.normal_clamped(0.5, 0.5, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from(9);
        assert_eq!(r.weighted_index(&[]), None);
        assert_eq!(r.weighted_index(&[0.0, 0.0]), None);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = SimRng::seed_from(17);
        let s = r.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
        assert!(r.sample_indices(3, 0).is_empty());
    }

    #[test]
    fn choose_and_ranges() {
        let mut r = SimRng::seed_from(19);
        let items = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(items.contains(r.choose(&items)));
            let x = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let y = r.range_u64(5, 8);
            assert!((5..8).contains(&y));
        }
    }
}
