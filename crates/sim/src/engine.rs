//! The simulation driver: pops events in time order and hands them to a
//! handler which may schedule further events through a [`Scheduler`].

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Interface the event handler uses to schedule follow-up events.
/// Newly scheduled events are merged into the main queue after each
/// handler invocation, so a handler can never starve the queue.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
    stop: bool,
}

impl<E> Scheduler<E> {
    /// Current simulated time (time of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time. Events scheduled in the past
    /// are clamped to "now" (they run next, preserving causality).
    pub fn at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.now);
        self.pending.push((t, event));
    }

    /// Schedule an event after a delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Request the run loop to stop after this handler returns.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// Outcome of [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Queue drained.
    Exhausted,
    /// Handler called [`Scheduler::stop`].
    Stopped,
    /// Event horizon reached (events beyond the horizon remain queued).
    HorizonReached,
    /// Step budget exhausted.
    StepLimit,
}

/// A discrete-event simulation over events of type `E`.
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    steps: u64,
    max_steps: u64,
    horizon: Option<SimTime>,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
            max_steps: u64::MAX,
            horizon: None,
        }
    }
}

impl<E> Simulation<E> {
    pub fn new() -> Simulation<E> {
        Self::default()
    }

    /// Hard cap on handled events (guards against runaway feedback loops).
    pub fn with_max_steps(mut self, max: u64) -> Simulation<E> {
        self.max_steps = max;
        self
    }

    /// Stop once simulated time would pass `horizon`.
    pub fn with_horizon(mut self, horizon: SimTime) -> Simulation<E> {
        self.horizon = Some(horizon);
        self
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedule before the run starts (or between runs).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }

    /// Pop every event scheduled for the earliest pending tick as one
    /// batch, advancing the clock to that tick. Within a batch, events keep
    /// their FIFO scheduling order.
    ///
    /// This is the pull-style counterpart of [`run`](Self::run) for
    /// batch-ingesting consumers (the platform applies a whole tick's
    /// worth of worker actions in one go, then synchronises task state
    /// once). Returns `None` when the queue is exhausted, the horizon would
    /// be passed (the clock then rests at the horizon), or the step budget
    /// is spent.
    pub fn next_batch(&mut self) -> Option<(SimTime, Vec<E>)> {
        if self.steps >= self.max_steps {
            return None;
        }
        let time = self.queue.peek_time()?;
        if let Some(h) = self.horizon {
            if time > h {
                self.now = h;
                return None;
            }
        }
        let mut batch = Vec::new();
        while self.queue.peek_time() == Some(time) && self.steps < self.max_steps {
            let (_, event) = self.queue.pop().expect("peeked");
            batch.push(event);
            self.steps += 1;
        }
        self.now = time;
        Some((time, batch))
    }

    /// Drive the simulation until exhaustion, stop request, horizon or step
    /// budget, whichever comes first.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Scheduler<E>, E)) -> RunOutcome {
        loop {
            if self.steps >= self.max_steps {
                return RunOutcome::StepLimit;
            }
            let Some(next_time) = self.queue.peek_time() else {
                return RunOutcome::Exhausted;
            };
            if let Some(h) = self.horizon {
                if next_time > h {
                    self.now = h;
                    return RunOutcome::HorizonReached;
                }
            }
            let (time, event) = self.queue.pop().expect("peeked");
            self.now = time;
            self.steps += 1;
            let mut sched = Scheduler {
                now: time,
                pending: Vec::new(),
                stop: false,
            };
            handler(&mut sched, event);
            let stop = sched.stop;
            for (t, e) in sched.pending {
                self.queue.schedule(t, e);
            }
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    #[test]
    fn chain_of_events_until_exhausted() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime(0), Ev::Ping(0));
        let mut seen = Vec::new();
        let out = sim.run(|s, e| {
            if let Ev::Ping(n) = e {
                seen.push((s.now(), n));
                if n < 4 {
                    s.after(SimDuration::secs(10), Ev::Ping(n + 1));
                }
            }
        });
        assert_eq!(out, RunOutcome::Exhausted);
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4], (SimTime(40), 4));
        assert_eq!(sim.steps(), 5);
        assert_eq!(sim.now(), SimTime(40));
    }

    #[test]
    fn stop_request_halts_immediately() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime(1), Ev::Stop);
        sim.schedule(SimTime(2), Ev::Ping(1));
        let out = sim.run(|s, e| {
            if matches!(e, Ev::Stop) {
                s.stop();
            } else {
                panic!("should not reach the later event");
            }
        });
        assert_eq!(out, RunOutcome::Stopped);
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn horizon_leaves_future_events_queued() {
        let mut sim = Simulation::new().with_horizon(SimTime(100));
        sim.schedule(SimTime(50), Ev::Ping(1));
        sim.schedule(SimTime(150), Ev::Ping(2));
        let mut handled = 0;
        let out = sim.run(|_, _| handled += 1);
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(handled, 1);
        assert_eq!(sim.now(), SimTime(100));
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn step_limit_bounds_feedback_loops() {
        let mut sim = Simulation::new().with_max_steps(10);
        sim.schedule(SimTime(0), Ev::Ping(0));
        let out = sim.run(|s, _| s.after(SimDuration::ZERO, Ev::Ping(0)));
        assert_eq!(out, RunOutcome::StepLimit);
        assert_eq!(sim.steps(), 10);
    }

    #[test]
    fn past_scheduling_clamped_to_now() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime(10), Ev::Ping(0));
        let mut times = Vec::new();
        sim.run(|s, e| {
            times.push(s.now());
            if let Ev::Ping(0) = e {
                s.at(SimTime(3), Ev::Ping(1)); // "in the past"
            }
        });
        assert_eq!(times, vec![SimTime(10), SimTime(10)]);
    }

    #[test]
    fn empty_simulation_exhausts_immediately() {
        let mut sim: Simulation<Ev> = Simulation::new();
        assert_eq!(sim.run(|_, _| {}), RunOutcome::Exhausted);
        assert_eq!(sim.steps(), 0);
    }

    #[test]
    fn next_batch_groups_same_tick_events_fifo() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime(10), Ev::Ping(1));
        sim.schedule(SimTime(5), Ev::Ping(0));
        sim.schedule(SimTime(10), Ev::Ping(2));
        let (t, batch) = sim.next_batch().unwrap();
        assert_eq!(t, SimTime(5));
        assert_eq!(batch, vec![Ev::Ping(0)]);
        let (t, batch) = sim.next_batch().unwrap();
        assert_eq!(t, SimTime(10));
        assert_eq!(batch, vec![Ev::Ping(1), Ev::Ping(2)]);
        assert_eq!(sim.now(), SimTime(10));
        assert_eq!(sim.steps(), 3);
        assert!(sim.next_batch().is_none());
    }

    #[test]
    fn next_batch_respects_horizon_and_step_budget() {
        let mut sim = Simulation::new().with_horizon(SimTime(50));
        sim.schedule(SimTime(60), Ev::Ping(1));
        assert!(sim.next_batch().is_none());
        assert_eq!(sim.now(), SimTime(50));
        assert_eq!(sim.pending_events(), 1);

        let mut sim = Simulation::new().with_max_steps(2);
        for i in 0..3 {
            sim.schedule(SimTime(1), Ev::Ping(i));
        }
        let (_, batch) = sim.next_batch().unwrap();
        assert_eq!(batch.len(), 2); // budget splits the tick
        assert!(sim.next_batch().is_none());
    }
}
