//! # crowd4u-sim — deterministic discrete-event simulation kernel
//!
//! Crowd4U's task-assignment workflow is deadline-driven: the controller
//! "waits for a sufficient number of workers to show interest", and "unless
//! all suggested workers start to perform the collaborative task by the
//! specified deadline, task assignment is re-executed" (paper §2.2.1).
//! Reproducing that offline needs a clock we control. This crate provides:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — logical seconds;
//! * [`queue::EventQueue`] — time-ordered, FIFO tie-broken event queue;
//! * [`engine::Simulation`] — the run loop, with stop / horizon / step caps;
//! * [`rng::SimRng`] — seeded RNG with gaussian/exponential/weighted helpers;
//! * [`stats`] — counters, Welford moments, histograms, percentiles.
//!
//! Determinism guarantee: a simulation with the same seed, same initial
//! events and same handler logic replays identically, tick for tick.
//!
//! ```
//! use crowd4u_sim::prelude::*;
//!
//! let mut sim = Simulation::new();
//! sim.schedule(SimTime(0), "worker-arrives");
//! let mut arrivals = 0;
//! sim.run(|s, _ev| {
//!     arrivals += 1;
//!     if arrivals < 3 {
//!         s.after(SimDuration::minutes(5), "worker-arrives");
//!     }
//! });
//! assert_eq!(arrivals, 3);
//! assert_eq!(sim.now(), SimTime(600));
//! ```

pub mod engine;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub mod prelude {
    pub use crate::engine::{RunOutcome, Scheduler, Simulation};
    pub use crate::queue::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::stats::{Counters, Histogram, Running, Samples};
    pub use crate::time::{SimDuration, SimTime};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in nondecreasing time order, FIFO within ties.
        #[test]
        fn queue_orders_events(times in proptest::collection::vec(0u64..100, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO violated on tie");
                    }
                }
                last = Some((t, i));
            }
        }

        /// The engine visits every scheduled event exactly once (no feedback).
        #[test]
        fn engine_visits_all(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut sim = Simulation::new();
            for (i, &t) in times.iter().enumerate() {
                sim.schedule(SimTime(t), i);
            }
            let mut seen = vec![false; times.len()];
            sim.run(|_, i| { seen[i] = true; });
            prop_assert!(seen.iter().all(|&b| b));
            prop_assert_eq!(sim.steps(), times.len() as u64);
        }

        /// Two RNGs with the same seed agree on any mix of draws.
        #[test]
        fn rng_replay(seed in any::<u64>(), ops in proptest::collection::vec(0u8..5, 0..50)) {
            let mut a = SimRng::seed_from(seed);
            let mut b = SimRng::seed_from(seed);
            for op in ops {
                match op {
                    0 => prop_assert_eq!(a.unit(), b.unit()),
                    1 => prop_assert_eq!(a.gaussian(), b.gaussian()),
                    2 => prop_assert_eq!(a.exponential(2.0), b.exponential(2.0)),
                    3 => prop_assert_eq!(a.chance(0.5), b.chance(0.5)),
                    _ => prop_assert_eq!(a.index(10), b.index(10)),
                }
            }
        }

        /// Welford never produces negative variance.
        #[test]
        fn variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut r = Running::new();
            for x in xs { r.push(x); }
            prop_assert!(r.variance() >= -1e-6);
        }
    }
}
