//! Online statistics for simulation output: counters, Welford running
//! moments, fixed-bin histograms and percentile summaries.

use std::collections::BTreeMap;
use std::fmt;

/// Named monotonic counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    pub fn add(&mut self, name: &str, n: u64) {
        *self.map.entry(name.to_owned()).or_insert(0) += n;
    }

    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.map {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

/// Welford's online mean/variance with min/max tracking.
#[derive(Debug, Clone, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    pub fn new() -> Running {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel collection).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[lo, hi)` with under/overflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Percentile summary from a sample set (materialises and sorts).
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
}

impl Samples {
    pub fn new() -> Samples {
        Samples::default()
    }

    pub fn push(&mut self, x: f64) {
        self.data.push(x);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.data.is_empty() {
            return None;
        }
        let mut sorted = self.data.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(sorted.len() - 1);
        Some(sorted[idx])
    }

    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.data.iter().sum::<f64>() / self.data.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut c = Counters::new();
        c.incr("tasks");
        c.add("tasks", 4);
        c.incr("teams");
        assert_eq!(c.get("tasks"), 5);
        assert_eq!(c.get("teams"), 1);
        assert_eq!(c.get("missing"), 0);
        let all: Vec<(&str, u64)> = c.iter().collect();
        assert_eq!(all, vec![("tasks", 5), ("teams", 1)]);
        assert!(c.to_string().contains("tasks: 5"));
    }

    #[test]
    fn running_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0, -5.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((r.mean() - mean).abs() < 1e-12);
        assert!((r.variance() - var).abs() < 1e-12);
        assert_eq!(r.min(), -5.0);
        assert_eq!(r.max(), 10.0);
        assert_eq!(r.count(), 6);
    }

    #[test]
    fn running_empty_is_nan() {
        let r = Running::new();
        assert!(r.mean().is_nan());
        assert!(r.variance().is_nan());
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Running::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
        // merging an empty accumulator is a no-op
        let before = a.mean();
        a.merge(&Running::new());
        assert_eq!(a.mean(), before);
        // merging into empty copies
        let mut empty = Running::new();
        empty.merge(&all);
        assert!((empty.mean() - all.mean()).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin_counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn percentiles() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), None);
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(95.0), Some(95.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.median(), Some(50.0));
        assert_eq!(s.mean(), Some(50.5));
    }
}
