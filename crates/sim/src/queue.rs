//! Time-ordered event queue with FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with the
        // insertion sequence breaking ties so same-time events pop FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs popping in nondecreasing time
/// order; events scheduled for the same tick pop in insertion order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> EventQueue<E> {
        Self::default()
    }

    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.peek_time(), Some(SimTime(10)));
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        q.schedule(SimTime(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "late");
        q.schedule(SimTime(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
