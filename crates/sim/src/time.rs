//! Logical simulation time.
//!
//! One tick is one simulated second. Deadlines in Crowd4U ("unless all
//! suggested workers start the task by the specified deadline…") are about
//! event ordering, not wall-clock accuracy, so a u64 tick counter suffices
//! and keeps every run deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, in ticks (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in ticks (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn secs(n: u64) -> SimDuration {
        SimDuration(n)
    }

    pub fn minutes(n: u64) -> SimDuration {
        SimDuration(n * 60)
    }

    pub fn hours(n: u64) -> SimDuration {
        SimDuration(n * 3600)
    }

    pub fn days(n: u64) -> SimDuration {
        SimDuration(n * 86_400)
    }

    pub fn ticks(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 86_400 {
            write!(f, "{}d{}h", s / 86_400, (s % 86_400) / 3600)
        } else if s >= 3600 {
            write!(f, "{}h{}m", s / 3600, (s % 3600) / 60)
        } else if s >= 60 {
            write!(f, "{}m{}s", s / 60, s % 60)
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration::secs(20);
        assert_eq!(t, SimTime(120));
        assert_eq!(t - SimTime(100), SimDuration(20));
        // saturating: no underflow going backwards
        assert_eq!(SimTime(5) - SimTime(10), SimDuration::ZERO);
        let mut u = SimTime::ZERO;
        u += SimDuration::minutes(2);
        assert_eq!(u.ticks(), 120);
        assert_eq!(SimDuration::secs(1) + SimDuration::secs(2), SimDuration(3));
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(SimDuration::minutes(1).ticks(), 60);
        assert_eq!(SimDuration::hours(2).ticks(), 7200);
        assert_eq!(SimDuration::days(1).ticks(), 86_400);
        assert_eq!(SimDuration::hours(1).as_secs_f64(), 3600.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::secs(42).to_string(), "42s");
        assert_eq!(SimDuration::secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::hours(2).to_string(), "2h0m");
        assert_eq!(SimDuration::days(1).to_string(), "1d0h");
        assert_eq!(SimTime(7).to_string(), "t=7");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::minutes(1) < SimDuration::hours(1));
    }
}
