//! The quality model shared by all collaboration schemes.
//!
//! The paper argues (§1) that different task types need different
//! coordination: sequential improvement for translation, parallel content
//! generation for journalism, a mix for surveillance. To *measure* that
//! claim offline we need an explicit model of how contribution quality
//! composes. The model here is deliberately simple and documented:
//!
//! * **Sequential improvement** — a reviewer of quality `w` lifts an
//!   artifact from `q` to `q + α·w·(1-q)`: diminishing returns, never
//!   regresses, never exceeds 1. This matches the find-fix-verify intuition
//!   that each pass closes a fraction of the remaining errors.
//! * **Simultaneous merge** — a section written by a team is the mean of
//!   its contributors' qualities plus a synergy term `β·(affinity − 0.5)`:
//!   well-acquainted teams coordinate better than strangers, poorly-matched
//!   teams interfere. This is the mechanism that makes affinity-aware
//!   assignment *measurably* better, reproducing the paper's premise.
//! * **Correction** — in hybrid surveillance flows, a correction by a
//!   worker of quality `w` replaces the fact's quality with
//!   `max(q, 0.5·(q+w))`: corrections help when the corrector is better.

/// Fraction of remaining defects one sequential pass removes (scaled by
/// the worker's quality).
pub const SEQ_LIFT: f64 = 0.6;

/// Weight of team affinity in the simultaneous synergy term.
pub const SYNERGY_WEIGHT: f64 = 0.25;

/// One sequential improvement pass.
pub fn sequential_improve(current: f64, worker_quality: f64) -> f64 {
    let q = current.clamp(0.0, 1.0);
    let w = worker_quality.clamp(0.0, 1.0);
    (q + SEQ_LIFT * w * (1.0 - q)).clamp(0.0, 1.0)
}

/// Merge quality of a simultaneously-authored unit.
pub fn simultaneous_merge(member_qualities: &[f64], team_affinity: f64) -> f64 {
    if member_qualities.is_empty() {
        return 0.0;
    }
    let mean = member_qualities.iter().sum::<f64>() / member_qualities.len() as f64;
    let synergy = SYNERGY_WEIGHT * (team_affinity.clamp(0.0, 1.0) - 0.5);
    (mean + synergy).clamp(0.0, 1.0)
}

/// Apply a correction pass to an observed fact.
pub fn correction(current: f64, corrector_quality: f64) -> f64 {
    let q = current.clamp(0.0, 1.0);
    let w = corrector_quality.clamp(0.0, 1.0);
    q.max(0.5 * (q + w)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_never_regresses_and_saturates() {
        let mut q = 0.2;
        for _ in 0..50 {
            let next = sequential_improve(q, 0.8);
            assert!(next >= q);
            q = next;
        }
        assert!(q > 0.99, "should saturate near 1, got {q}");
        assert_eq!(sequential_improve(1.0, 1.0), 1.0);
        // zero-quality reviewer changes nothing
        assert_eq!(sequential_improve(0.5, 0.0), 0.5);
    }

    #[test]
    fn sequential_better_reviewer_helps_more() {
        let a = sequential_improve(0.4, 0.9);
        let b = sequential_improve(0.4, 0.3);
        assert!(a > b);
    }

    #[test]
    fn sequential_clamps_inputs() {
        assert!(sequential_improve(-1.0, 2.0) <= 1.0);
        assert!(sequential_improve(2.0, -1.0) <= 1.0);
    }

    #[test]
    fn merge_mean_and_synergy() {
        // neutral affinity 0.5: plain mean
        let m = simultaneous_merge(&[0.6, 0.8], 0.5);
        assert!((m - 0.7).abs() < 1e-12);
        // high affinity adds, low affinity subtracts
        assert!(simultaneous_merge(&[0.6, 0.8], 1.0) > m);
        assert!(simultaneous_merge(&[0.6, 0.8], 0.0) < m);
        // bounded
        assert!(simultaneous_merge(&[1.0, 1.0], 1.0) <= 1.0);
        assert!(simultaneous_merge(&[0.0], 0.0) >= 0.0);
        assert_eq!(simultaneous_merge(&[], 1.0), 0.0);
    }

    #[test]
    fn correction_improves_or_keeps() {
        assert!((correction(0.2, 0.8) - 0.5).abs() < 1e-12);
        assert_eq!(correction(0.8, 0.2), 0.8); // worse corrector: no change
        assert_eq!(correction(1.0, 1.0), 1.0);
        assert!(correction(0.0, 0.0) >= 0.0);
    }
}
