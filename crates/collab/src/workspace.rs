//! A shared-document workspace: the in-repo stand-in for the external
//! collaboration tool (Google Docs) of paper Figure 5.
//!
//! "The members work together with any collaboration tool (e.g., Google
//! docs). … While delegating communication methods to other collaboration
//! tools, Crowd4U controls task generation and assignment" (§2.3–2.4).
//! The platform therefore only needs a tool with sections, per-worker
//! edits, and a final merged document — which is what this provides.

use crowd4u_crowd::profile::WorkerId;
use std::fmt;

/// One worker's contribution to a section.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    pub worker: WorkerId,
    pub text: String,
    /// Quality of this contribution in `[0,1]` (from the worker model).
    pub quality: f64,
    /// Monotone edit counter at submission (for ordering).
    pub revision: u64,
}

/// A named section of the shared document.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    pub title: String,
    pub contributions: Vec<Contribution>,
}

impl Section {
    /// Concatenated text in revision order.
    pub fn merged_text(&self) -> String {
        let mut parts: Vec<&Contribution> = self.contributions.iter().collect();
        parts.sort_by_key(|c| c.revision);
        parts
            .iter()
            .map(|c| c.text.as_str())
            .filter(|t| !t.is_empty())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Qualities of the distinct contributors (mean per worker).
    pub fn contributor_qualities(&self) -> Vec<f64> {
        let mut workers: Vec<WorkerId> = Vec::new();
        for c in &self.contributions {
            if !workers.contains(&c.worker) {
                workers.push(c.worker);
            }
        }
        workers
            .iter()
            .map(|w| {
                let (sum, n) = self
                    .contributions
                    .iter()
                    .filter(|c| c.worker == *w)
                    .fold((0.0, 0usize), |(s, n), c| (s + c.quality, n + 1));
                sum / n as f64
            })
            .collect()
    }
}

/// Errors from workspace operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkspaceError {
    NoSuchSection(usize),
    NotAMember(WorkerId),
    AlreadySubmitted,
}

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkspaceError::NoSuchSection(i) => write!(f, "no such section {i}"),
            WorkspaceError::NotAMember(w) => write!(f, "worker {w} is not a member"),
            WorkspaceError::AlreadySubmitted => f.write_str("workspace already submitted"),
        }
    }
}

/// The shared workspace: members, sections, an edit counter and a
/// submitted flag ("the result … is submitted by one of the team members,
/// but recorded as the result produced by the team", §2.3).
#[derive(Debug, Clone)]
pub struct SharedWorkspace {
    pub title: String,
    members: Vec<WorkerId>,
    sections: Vec<Section>,
    next_revision: u64,
    submitted: bool,
}

impl SharedWorkspace {
    pub fn new(
        title: impl Into<String>,
        members: Vec<WorkerId>,
        section_titles: &[&str],
    ) -> SharedWorkspace {
        SharedWorkspace {
            title: title.into(),
            members,
            sections: section_titles
                .iter()
                .map(|t| Section {
                    title: (*t).to_string(),
                    contributions: Vec::new(),
                })
                .collect(),
            next_revision: 1,
            submitted: false,
        }
    }

    pub fn members(&self) -> &[WorkerId] {
        &self.members
    }

    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    pub fn is_submitted(&self) -> bool {
        self.submitted
    }

    /// Append a contribution by a member to a section.
    pub fn contribute(
        &mut self,
        worker: WorkerId,
        section: usize,
        text: impl Into<String>,
        quality: f64,
    ) -> Result<u64, WorkspaceError> {
        if self.submitted {
            return Err(WorkspaceError::AlreadySubmitted);
        }
        if !self.members.contains(&worker) {
            return Err(WorkspaceError::NotAMember(worker));
        }
        let s = self
            .sections
            .get_mut(section)
            .ok_or(WorkspaceError::NoSuchSection(section))?;
        let rev = self.next_revision;
        self.next_revision += 1;
        s.contributions.push(Contribution {
            worker,
            text: text.into(),
            quality: quality.clamp(0.0, 1.0),
            revision: rev,
        });
        Ok(rev)
    }

    /// Number of edits each member made (zero-activity members included —
    /// the monitor uses this to detect free-riders).
    pub fn activity(&self) -> Vec<(WorkerId, usize)> {
        self.members
            .iter()
            .map(|w| {
                let n = self
                    .sections
                    .iter()
                    .flat_map(|s| &s.contributions)
                    .filter(|c| c.worker == *w)
                    .count();
                (*w, n)
            })
            .collect()
    }

    /// One member submits on behalf of the team; further edits are frozen.
    pub fn submit(&mut self, by: WorkerId) -> Result<MergedDocument, WorkspaceError> {
        if self.submitted {
            return Err(WorkspaceError::AlreadySubmitted);
        }
        if !self.members.contains(&by) {
            return Err(WorkspaceError::NotAMember(by));
        }
        self.submitted = true;
        Ok(MergedDocument {
            title: self.title.clone(),
            submitted_by: by,
            team: self.members.clone(),
            sections: self
                .sections
                .iter()
                .map(|s| (s.title.clone(), s.merged_text()))
                .collect(),
        })
    }
}

/// The merged document produced at submission. Attribution is to the team.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedDocument {
    pub title: String,
    pub submitted_by: WorkerId,
    pub team: Vec<WorkerId>,
    pub sections: Vec<(String, String)>,
}

impl fmt::Display for MergedDocument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        for (t, body) in &self.sections {
            writeln!(f, "## {t}")?;
            writeln!(f, "{body}")?;
        }
        write!(
            f,
            "(by team of {}, submitted by {})",
            self.team.len(),
            self.submitted_by
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    fn ws() -> SharedWorkspace {
        SharedWorkspace::new(
            "VLDB impressions",
            vec![w(1), w(2), w(3)],
            &["intro", "body"],
        )
    }

    #[test]
    fn contributions_merge_in_revision_order() {
        let mut s = ws();
        s.contribute(w(2), 0, "second", 0.5).unwrap();
        s.contribute(w(1), 0, "third", 0.5).unwrap();
        // interleave a different section
        s.contribute(w(3), 1, "body text", 0.5).unwrap();
        let text = s.sections()[0].merged_text();
        assert_eq!(text, "second\nthird");
        assert_eq!(s.sections()[1].merged_text(), "body text");
    }

    #[test]
    fn non_members_and_bad_sections_rejected() {
        let mut s = ws();
        assert_eq!(
            s.contribute(w(9), 0, "x", 0.5).unwrap_err(),
            WorkspaceError::NotAMember(w(9))
        );
        assert_eq!(
            s.contribute(w(1), 5, "x", 0.5).unwrap_err(),
            WorkspaceError::NoSuchSection(5)
        );
    }

    #[test]
    fn activity_counts_all_members() {
        let mut s = ws();
        s.contribute(w(1), 0, "a", 0.5).unwrap();
        s.contribute(w(1), 1, "b", 0.5).unwrap();
        s.contribute(w(2), 0, "c", 0.5).unwrap();
        let act = s.activity();
        assert_eq!(act, vec![(w(1), 2), (w(2), 1), (w(3), 0)]);
    }

    #[test]
    fn submit_freezes_and_attributes_to_team() {
        let mut s = ws();
        s.contribute(w(1), 0, "hello", 0.8).unwrap();
        let doc = s.submit(w(2)).unwrap();
        assert!(s.is_submitted());
        assert_eq!(doc.submitted_by, w(2));
        assert_eq!(doc.team, vec![w(1), w(2), w(3)]);
        assert_eq!(doc.sections[0], ("intro".into(), "hello".into()));
        // frozen
        assert_eq!(
            s.contribute(w(1), 0, "late", 0.5).unwrap_err(),
            WorkspaceError::AlreadySubmitted
        );
        assert_eq!(
            s.submit(w(1)).unwrap_err(),
            WorkspaceError::AlreadySubmitted
        );
        let text = doc.to_string();
        assert!(text.contains("# VLDB impressions"));
        assert!(text.contains("submitted by w2"));
    }

    #[test]
    fn submit_by_non_member_rejected() {
        let mut s = ws();
        assert_eq!(
            s.submit(w(7)).unwrap_err(),
            WorkspaceError::NotAMember(w(7))
        );
        assert!(!s.is_submitted());
    }

    #[test]
    fn contributor_qualities_mean_per_worker() {
        let mut s = ws();
        s.contribute(w(1), 0, "a", 0.4).unwrap();
        s.contribute(w(1), 0, "b", 0.8).unwrap();
        s.contribute(w(2), 0, "c", 1.0).unwrap();
        let mut q = s.sections()[0].contributor_qualities();
        q.sort_by(f64::total_cmp);
        assert_eq!(q.len(), 2);
        assert!((q[0] - 0.6).abs() < 1e-12);
        assert!((q[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quality_clamped_and_empty_text_skipped_in_merge() {
        let mut s = ws();
        s.contribute(w(1), 0, "", 5.0).unwrap();
        s.contribute(w(2), 0, "real", 0.5).unwrap();
        assert_eq!(s.sections()[0].contributions[0].quality, 1.0);
        assert_eq!(s.sections()[0].merged_text(), "real");
    }

    #[test]
    fn error_display() {
        assert!(WorkspaceError::NoSuchSection(1)
            .to_string()
            .contains("section"));
        assert!(WorkspaceError::NotAMember(w(1))
            .to_string()
            .contains("member"));
        assert!(WorkspaceError::AlreadySubmitted
            .to_string()
            .contains("submitted"));
    }
}
