//! Collaboration monitoring: "Once workers undertake a task, Crowd4U
//! monitors their collaboration for ensuring successful task completion."
//! (§2.2.1). The monitor tracks per-member activity timestamps and flags
//! stalled members and stalled collaborations, so the platform can trigger
//! re-assignment.

use crowd4u_crowd::profile::WorkerId;
use crowd4u_sim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A monitoring-relevant occurrence, as mapped from the platform's event
/// stream. The platform translates its own `PlatformEvent`s into these
/// and feeds them through [`CollabMonitor::apply`] — activity records and
/// completions today — so monitoring state is driven by the same events
/// that drive execution. `MemberRemoved` exists for team-repair flows
/// (dropping a stalled member and recruiting a replacement), which operate
/// on the monitor directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorEvent {
    /// A member did something at the given time.
    Activity(WorkerId, SimTime),
    /// A member left the team.
    MemberRemoved(WorkerId),
    /// The collaboration finished (terminal).
    Completed,
}

/// Health verdict for one collaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Everyone active recently.
    Healthy,
    /// Some members idle beyond the stall threshold.
    MembersStalled(Vec<WorkerId>),
    /// Nobody has acted for the threshold: the collaboration is stuck.
    Stalled,
    /// Completed (terminal).
    Complete,
}

/// Tracks activity of one team on one collaborative task.
#[derive(Debug, Clone)]
pub struct CollabMonitor {
    started: SimTime,
    stall_after: SimDuration,
    last_activity: BTreeMap<WorkerId, SimTime>,
    complete: bool,
}

impl CollabMonitor {
    /// Start monitoring a team. Members start with activity at `started`
    /// (undertaking counts as activity).
    pub fn new(members: &[WorkerId], started: SimTime, stall_after: SimDuration) -> CollabMonitor {
        CollabMonitor {
            started,
            stall_after,
            last_activity: members.iter().map(|&m| (m, started)).collect(),
            complete: false,
        }
    }

    /// Apply one event from the platform's event stream.
    pub fn apply(&mut self, event: MonitorEvent) {
        match event {
            MonitorEvent::Activity(member, at) => self.record_activity(member, at),
            MonitorEvent::MemberRemoved(member) => self.remove_member(member),
            MonitorEvent::Completed => self.mark_complete(),
        }
    }

    /// Record that a member did something at `now`. Unknown members are
    /// added (late replacements join the same monitor).
    pub fn record_activity(&mut self, member: WorkerId, now: SimTime) {
        let e = self.last_activity.entry(member).or_insert(now);
        if now > *e {
            *e = now;
        }
    }

    /// Remove a member (dropped from the team).
    pub fn remove_member(&mut self, member: WorkerId) {
        self.last_activity.remove(&member);
    }

    pub fn mark_complete(&mut self) {
        self.complete = true;
    }

    pub fn members(&self) -> Vec<WorkerId> {
        self.last_activity.keys().copied().collect()
    }

    /// Idle time of one member at `now`.
    pub fn idle_for(&self, member: WorkerId, now: SimTime) -> Option<SimDuration> {
        self.last_activity.get(&member).map(|&t| now - t)
    }

    /// Assess health at `now`.
    pub fn check(&self, now: SimTime) -> Verdict {
        if self.complete {
            return Verdict::Complete;
        }
        if self.last_activity.is_empty() {
            return Verdict::Stalled;
        }
        let stalled: Vec<WorkerId> = self
            .last_activity
            .iter()
            .filter(|(_, &t)| now - t >= self.stall_after)
            .map(|(&w, _)| w)
            .collect();
        if stalled.len() == self.last_activity.len() {
            Verdict::Stalled
        } else if stalled.is_empty() {
            Verdict::Healthy
        } else {
            Verdict::MembersStalled(stalled)
        }
    }

    /// How long the collaboration has run at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now - self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    fn monitor() -> CollabMonitor {
        CollabMonitor::new(&[w(1), w(2), w(3)], SimTime(0), SimDuration::minutes(10))
    }

    #[test]
    fn healthy_when_recent_activity() {
        let mut m = monitor();
        m.record_activity(w(1), SimTime(100));
        m.record_activity(w(2), SimTime(200));
        m.record_activity(w(3), SimTime(300));
        assert_eq!(m.check(SimTime(400)), Verdict::Healthy);
    }

    #[test]
    fn partial_stall_names_the_idle() {
        let mut m = monitor();
        // workers 1 and 2 act late; worker 3 never acts after start
        m.record_activity(w(1), SimTime(500));
        m.record_activity(w(2), SimTime(550));
        match m.check(SimTime(0) + SimDuration::minutes(10)) {
            Verdict::MembersStalled(v) => assert_eq!(v, vec![w(3)]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_stall_detected() {
        let m = monitor();
        assert_eq!(
            m.check(SimTime(0) + SimDuration::minutes(10)),
            Verdict::Stalled
        );
        // just before the threshold: healthy
        assert_eq!(m.check(SimTime(599)), Verdict::Healthy);
    }

    #[test]
    fn completion_is_terminal() {
        let mut m = monitor();
        m.mark_complete();
        assert_eq!(
            m.check(SimTime(0) + SimDuration::days(1)),
            Verdict::Complete
        );
    }

    #[test]
    fn member_management() {
        let mut m = monitor();
        m.remove_member(w(3));
        assert_eq!(m.members(), vec![w(1), w(2)]);
        // replacement joins with fresh activity
        m.record_activity(w(9), SimTime(600));
        assert_eq!(m.members(), vec![w(1), w(2), w(9)]);
        match m.check(SimTime(0) + SimDuration::minutes(10)) {
            Verdict::MembersStalled(v) => assert_eq!(v, vec![w(1), w(2)]),
            other => panic!("unexpected {other:?}"),
        }
        // removing everyone means stalled
        for id in m.members() {
            m.remove_member(id);
        }
        assert_eq!(m.check(SimTime(601)), Verdict::Stalled);
    }

    #[test]
    fn activity_never_moves_backwards() {
        let mut m = monitor();
        m.record_activity(w(1), SimTime(500));
        m.record_activity(w(1), SimTime(100)); // out-of-order event
        assert_eq!(m.idle_for(w(1), SimTime(600)), Some(SimDuration::secs(100)));
        assert_eq!(m.idle_for(w(9), SimTime(600)), None);
    }

    #[test]
    fn age_tracks_start() {
        let m = CollabMonitor::new(&[w(1)], SimTime(100), SimDuration::minutes(1));
        assert_eq!(m.age(SimTime(160)), SimDuration::secs(60));
    }

    #[test]
    fn event_stream_drives_monitor() {
        let mut m = monitor();
        m.apply(MonitorEvent::Activity(w(1), SimTime(500)));
        m.apply(MonitorEvent::Activity(w(2), SimTime(550)));
        m.apply(MonitorEvent::MemberRemoved(w(3)));
        assert_eq!(
            m.check(SimTime(0) + SimDuration::minutes(10)),
            Verdict::Healthy
        );
        assert_eq!(m.members(), vec![w(1), w(2)]);
        m.apply(MonitorEvent::Completed);
        assert_eq!(m.check(SimTime(10_000)), Verdict::Complete);
    }
}
