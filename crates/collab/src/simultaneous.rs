//! Simultaneous collaboration (paper §2.3):
//!
//! "In this mode, Crowd4U first assigns the task to solicit her SNS ID
//! (e.g., Google account) to communicate with other members in the team.
//! After all the members are in the 'undertakes' status, the collaborative
//! task is generated and assigned to all the members with the list of
//! obtained IDs. The members work together with any collaboration tool …
//! The result of the collaborative task is submitted by one of the team
//! members, but recorded as the result produced by the team."
//!
//! This module implements that protocol as an explicit state machine.

use crate::quality::simultaneous_merge;
use crate::workspace::{MergedDocument, SharedWorkspace, WorkspaceError};
use crowd4u_crowd::profile::WorkerId;
use std::collections::BTreeMap;
use std::fmt;

/// Protocol phases of a simultaneous session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for every member's SNS id.
    CollectingIds,
    /// Workspace open, members editing.
    Working,
    /// One member submitted on behalf of the team.
    Submitted,
}

/// Errors from the session protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    WrongPhase { expected: Phase, actual: Phase },
    NotAMember(WorkerId),
    Workspace(WorkspaceError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::WrongPhase { expected, actual } => {
                write!(
                    f,
                    "operation requires phase {expected:?}, session is {actual:?}"
                )
            }
            SessionError::NotAMember(w) => write!(f, "worker {w} is not a member"),
            SessionError::Workspace(e) => write!(f, "workspace: {e}"),
        }
    }
}

impl From<WorkspaceError> for SessionError {
    fn from(e: WorkspaceError) -> Self {
        SessionError::Workspace(e)
    }
}

/// A simultaneous collaboration session.
#[derive(Debug, Clone)]
pub struct SimultaneousSession {
    phase: Phase,
    members: Vec<WorkerId>,
    sns_ids: BTreeMap<WorkerId, String>,
    workspace: Option<SharedWorkspace>,
    title: String,
    section_titles: Vec<String>,
    team_affinity: f64,
}

impl SimultaneousSession {
    /// Open a session for a formed team. `team_affinity` comes from the
    /// assignment controller and feeds the synergy term of the merge model.
    pub fn new(
        title: impl Into<String>,
        members: Vec<WorkerId>,
        section_titles: &[&str],
        team_affinity: f64,
    ) -> SimultaneousSession {
        SimultaneousSession {
            phase: Phase::CollectingIds,
            members,
            sns_ids: BTreeMap::new(),
            workspace: None,
            title: title.into(),
            section_titles: section_titles.iter().map(|s| (*s).to_string()).collect(),
            team_affinity,
        }
    }

    pub fn phase(&self) -> Phase {
        self.phase
    }

    pub fn members(&self) -> &[WorkerId] {
        &self.members
    }

    /// The solicited SNS ids so far.
    pub fn sns_ids(&self) -> &BTreeMap<WorkerId, String> {
        &self.sns_ids
    }

    /// Phase 1: a member provides their SNS id. When the last id arrives,
    /// the workspace is generated and the session moves to `Working`.
    pub fn provide_sns_id(
        &mut self,
        worker: WorkerId,
        sns_id: impl Into<String>,
    ) -> Result<Phase, SessionError> {
        if self.phase != Phase::CollectingIds {
            return Err(SessionError::WrongPhase {
                expected: Phase::CollectingIds,
                actual: self.phase,
            });
        }
        if !self.members.contains(&worker) {
            return Err(SessionError::NotAMember(worker));
        }
        self.sns_ids.insert(worker, sns_id.into());
        if self.sns_ids.len() == self.members.len() {
            let titles: Vec<&str> = self.section_titles.iter().map(String::as_str).collect();
            self.workspace = Some(SharedWorkspace::new(
                self.title.clone(),
                self.members.clone(),
                &titles,
            ));
            self.phase = Phase::Working;
        }
        Ok(self.phase)
    }

    /// Phase 2: edit the shared workspace.
    pub fn contribute(
        &mut self,
        worker: WorkerId,
        section: usize,
        text: impl Into<String>,
        quality: f64,
    ) -> Result<(), SessionError> {
        let ws = self.workspace.as_mut().ok_or(SessionError::WrongPhase {
            expected: Phase::Working,
            actual: self.phase,
        })?;
        ws.contribute(worker, section, text, quality)?;
        Ok(())
    }

    /// Member activity counts (for the collaboration monitor).
    pub fn activity(&self) -> Vec<(WorkerId, usize)> {
        self.workspace
            .as_ref()
            .map(|w| w.activity())
            .unwrap_or_else(|| self.members.iter().map(|&m| (m, 0)).collect())
    }

    /// Phase 3: one member submits; returns the merged document and the
    /// modelled team quality.
    pub fn submit(&mut self, by: WorkerId) -> Result<(MergedDocument, f64), SessionError> {
        if self.phase != Phase::Working {
            return Err(SessionError::WrongPhase {
                expected: Phase::Working,
                actual: self.phase,
            });
        }
        let ws = self
            .workspace
            .as_mut()
            .expect("working phase has workspace");
        // Quality: mean over sections of the simultaneous merge model.
        let mut section_q = Vec::new();
        for s in ws.sections() {
            let qs = s.contributor_qualities();
            section_q.push(simultaneous_merge(&qs, self.team_affinity));
        }
        let quality = if section_q.is_empty() {
            0.0
        } else {
            section_q.iter().sum::<f64>() / section_q.len() as f64
        };
        let doc = ws.submit(by)?;
        self.phase = Phase::Submitted;
        Ok((doc, quality))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    fn session() -> SimultaneousSession {
        SimultaneousSession::new(
            "citizen report",
            vec![w(1), w(2)],
            &["events", "analysis"],
            0.8,
        )
    }

    #[test]
    fn protocol_happy_path() {
        let mut s = session();
        assert_eq!(s.phase(), Phase::CollectingIds);
        // cannot edit before ids collected
        assert!(matches!(
            s.contribute(w(1), 0, "early", 0.5),
            Err(SessionError::WrongPhase { .. })
        ));
        assert_eq!(
            s.provide_sns_id(w(1), "ann@gmail").unwrap(),
            Phase::CollectingIds
        );
        assert_eq!(s.provide_sns_id(w(2), "bob@gmail").unwrap(), Phase::Working);
        assert_eq!(s.sns_ids().len(), 2);
        s.contribute(w(1), 0, "protest downtown", 0.7).unwrap();
        s.contribute(w(2), 1, "context: budget cuts", 0.9).unwrap();
        let (doc, quality) = s.submit(w(2)).unwrap();
        assert_eq!(s.phase(), Phase::Submitted);
        assert_eq!(doc.team, vec![w(1), w(2)]);
        assert!(quality > 0.0 && quality <= 1.0);
        // affinity 0.8 adds synergy over the plain mean 0.8
        // (sections have single contributors: mean = 0.7 and 0.9)
        let expected = ((0.7 + 0.25 * 0.3) + (0.9 + 0.25 * 0.3)) / 2.0;
        assert!((quality - expected).abs() < 1e-9, "quality {quality}");
    }

    #[test]
    fn non_member_rejected_everywhere() {
        let mut s = session();
        assert!(matches!(
            s.provide_sns_id(w(9), "x"),
            Err(SessionError::NotAMember(_))
        ));
        s.provide_sns_id(w(1), "a").unwrap();
        s.provide_sns_id(w(2), "b").unwrap();
        assert!(matches!(
            s.contribute(w(9), 0, "x", 0.5),
            Err(SessionError::Workspace(WorkspaceError::NotAMember(_)))
        ));
        assert!(matches!(
            s.submit(w(9)),
            Err(SessionError::Workspace(WorkspaceError::NotAMember(_)))
        ));
    }

    #[test]
    fn duplicate_sns_id_overwrites_not_advances() {
        let mut s = session();
        s.provide_sns_id(w(1), "a").unwrap();
        assert_eq!(s.provide_sns_id(w(1), "a2").unwrap(), Phase::CollectingIds);
        assert_eq!(s.sns_ids().get(&w(1)).unwrap(), "a2");
    }

    #[test]
    fn cannot_submit_twice_or_out_of_phase() {
        let mut s = session();
        assert!(matches!(
            s.submit(w(1)),
            Err(SessionError::WrongPhase { .. })
        ));
        s.provide_sns_id(w(1), "a").unwrap();
        s.provide_sns_id(w(2), "b").unwrap();
        s.contribute(w(1), 0, "x", 0.5).unwrap();
        s.submit(w(1)).unwrap();
        assert!(matches!(
            s.submit(w(2)),
            Err(SessionError::WrongPhase { .. })
        ));
        // and ids can no longer be provided
        assert!(matches!(
            s.provide_sns_id(w(2), "late"),
            Err(SessionError::WrongPhase { .. })
        ));
    }

    #[test]
    fn activity_before_workspace_is_zero() {
        let s = session();
        assert_eq!(s.activity(), vec![(w(1), 0), (w(2), 0)]);
    }

    #[test]
    fn higher_affinity_higher_quality() {
        let run = |aff: f64| {
            let mut s = SimultaneousSession::new("r", vec![w(1), w(2)], &["s"], aff);
            s.provide_sns_id(w(1), "a").unwrap();
            s.provide_sns_id(w(2), "b").unwrap();
            s.contribute(w(1), 0, "x", 0.6).unwrap();
            s.contribute(w(2), 0, "y", 0.6).unwrap();
            s.submit(w(1)).unwrap().1
        };
        assert!(run(0.9) > run(0.1), "synergy must reward affinity");
    }

    #[test]
    fn error_display() {
        let e = SessionError::WrongPhase {
            expected: Phase::Working,
            actual: Phase::Submitted,
        };
        assert!(e.to_string().contains("Working"));
        assert!(SessionError::NotAMember(w(1)).to_string().contains("w1"));
    }
}
