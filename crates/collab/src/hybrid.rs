//! Hybrid collaboration (paper §2.3):
//!
//! "Crowd4U allows to interleave the two result coordination schemes in a
//! complex data flow. For example, surveillance and correction tasks are
//! executed as a sequential collaboration while the testimonials are
//! provided simultaneously."
//!
//! A [`HybridFlow`] therefore runs one sequential *fact-collection* track —
//! observations corrected in sequence — alongside a simultaneous
//! *testimonial* track, and joins them into a final report.

use crate::quality::{correction, simultaneous_merge};
use crowd4u_crowd::profile::WorkerId;
use std::fmt;

/// One observed fact in the sequential track.
#[derive(Debug, Clone, PartialEq)]
pub struct FactRecord {
    pub region: String,
    pub description: String,
    pub observer: WorkerId,
    pub quality: f64,
    /// Correction passes applied (worker, quality after).
    pub corrections: Vec<(WorkerId, f64)>,
}

/// A testimonial in the simultaneous track.
#[derive(Debug, Clone, PartialEq)]
pub struct Testimonial {
    pub witness: WorkerId,
    pub region: String,
    pub statement: String,
    pub quality: f64,
}

/// Errors from the hybrid flow.
#[derive(Debug, Clone, PartialEq)]
pub enum HybridError {
    NoSuchFact(usize),
    /// The observer may not correct their own fact.
    SelfCorrection(WorkerId),
    AlreadyClosed,
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::NoSuchFact(i) => write!(f, "no such fact {i}"),
            HybridError::SelfCorrection(w) => {
                write!(f, "worker {w} cannot correct their own observation")
            }
            HybridError::AlreadyClosed => f.write_str("flow already closed"),
        }
    }
}

/// The hybrid surveillance flow.
#[derive(Debug, Clone, Default)]
pub struct HybridFlow {
    facts: Vec<FactRecord>,
    testimonials: Vec<Testimonial>,
    closed: bool,
}

impl HybridFlow {
    pub fn new() -> HybridFlow {
        HybridFlow::default()
    }

    /// Sequential track: record a fresh observation.
    pub fn observe(
        &mut self,
        observer: WorkerId,
        region: impl Into<String>,
        description: impl Into<String>,
        quality: f64,
    ) -> Result<usize, HybridError> {
        if self.closed {
            return Err(HybridError::AlreadyClosed);
        }
        self.facts.push(FactRecord {
            region: region.into(),
            description: description.into(),
            observer,
            quality: quality.clamp(0.0, 1.0),
            corrections: Vec::new(),
        });
        Ok(self.facts.len() - 1)
    }

    /// Sequential track: another worker corrects an observation
    /// ("correcting each others' observations", §1).
    pub fn correct(
        &mut self,
        fact: usize,
        corrector: WorkerId,
        corrector_quality: f64,
    ) -> Result<f64, HybridError> {
        if self.closed {
            return Err(HybridError::AlreadyClosed);
        }
        let f = self
            .facts
            .get_mut(fact)
            .ok_or(HybridError::NoSuchFact(fact))?;
        if f.observer == corrector {
            return Err(HybridError::SelfCorrection(corrector));
        }
        let q = correction(f.quality, corrector_quality.clamp(0.0, 1.0));
        f.quality = q;
        f.corrections.push((corrector, q));
        Ok(q)
    }

    /// Simultaneous track: a witness adds a testimonial independently.
    pub fn testify(
        &mut self,
        witness: WorkerId,
        region: impl Into<String>,
        statement: impl Into<String>,
        quality: f64,
    ) -> Result<(), HybridError> {
        if self.closed {
            return Err(HybridError::AlreadyClosed);
        }
        self.testimonials.push(Testimonial {
            witness,
            region: region.into(),
            statement: statement.into(),
            quality: quality.clamp(0.0, 1.0),
        });
        Ok(())
    }

    pub fn facts(&self) -> &[FactRecord] {
        &self.facts
    }

    pub fn testimonials(&self) -> &[Testimonial] {
        &self.testimonials
    }

    /// Join both tracks into the final report. `witness_affinity` is the
    /// affinity of the testimonial group (simultaneous merge synergy).
    pub fn close(&mut self, witness_affinity: f64) -> Result<SurveillanceReport, HybridError> {
        if self.closed {
            return Err(HybridError::AlreadyClosed);
        }
        self.closed = true;
        let fact_quality = if self.facts.is_empty() {
            0.0
        } else {
            self.facts.iter().map(|f| f.quality).sum::<f64>() / self.facts.len() as f64
        };
        let t_qualities: Vec<f64> = self.testimonials.iter().map(|t| t.quality).collect();
        let testimony_quality = simultaneous_merge(&t_qualities, witness_affinity);
        // Facts are primary evidence; testimonials corroborate.
        let overall = if self.testimonials.is_empty() {
            fact_quality
        } else {
            (2.0 * fact_quality + testimony_quality) / 3.0
        };
        let mut regions: Vec<String> = self
            .facts
            .iter()
            .map(|f| f.region.clone())
            .chain(self.testimonials.iter().map(|t| t.region.clone()))
            .collect();
        regions.sort();
        regions.dedup();
        Ok(SurveillanceReport {
            n_facts: self.facts.len(),
            n_corrections: self.facts.iter().map(|f| f.corrections.len()).sum(),
            n_testimonials: self.testimonials.len(),
            regions,
            fact_quality,
            testimony_quality,
            overall_quality: overall.clamp(0.0, 1.0),
        })
    }
}

/// Final joined output of a hybrid flow.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveillanceReport {
    pub n_facts: usize,
    pub n_corrections: usize,
    pub n_testimonials: usize,
    pub regions: Vec<String>,
    pub fact_quality: f64,
    pub testimony_quality: f64,
    pub overall_quality: f64,
}

impl fmt::Display for SurveillanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "report: {} facts ({} corrections), {} testimonials over {} regions; \
             quality fact={:.2} testimony={:.2} overall={:.2}",
            self.n_facts,
            self.n_corrections,
            self.n_testimonials,
            self.regions.len(),
            self.fact_quality,
            self.testimony_quality,
            self.overall_quality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn full_hybrid_flow() {
        let mut flow = HybridFlow::new();
        let f0 = flow.observe(w(1), "north", "smoke rising", 0.4).unwrap();
        let f1 = flow.observe(w(2), "south", "road blocked", 0.6).unwrap();
        // corrections improve facts
        let q = flow.correct(f0, w(2), 0.9).unwrap();
        assert!(q > 0.4);
        flow.correct(f1, w(3), 0.8).unwrap();
        // testimonials arrive independently
        flow.testify(w(4), "north", "I saw it too", 0.7).unwrap();
        flow.testify(w(5), "north", "confirmed", 0.8).unwrap();
        let report = flow.close(0.9).unwrap();
        assert_eq!(report.n_facts, 2);
        assert_eq!(report.n_corrections, 2);
        assert_eq!(report.n_testimonials, 2);
        assert_eq!(report.regions, vec!["north", "south"]);
        assert!(report.overall_quality > 0.5);
        assert!(report.to_string().contains("2 facts"));
    }

    #[test]
    fn self_correction_rejected() {
        let mut flow = HybridFlow::new();
        let f = flow.observe(w(1), "r", "x", 0.5).unwrap();
        assert_eq!(
            flow.correct(f, w(1), 0.9).unwrap_err(),
            HybridError::SelfCorrection(w(1))
        );
    }

    #[test]
    fn missing_fact_rejected() {
        let mut flow = HybridFlow::new();
        assert_eq!(
            flow.correct(3, w(1), 0.9).unwrap_err(),
            HybridError::NoSuchFact(3)
        );
    }

    #[test]
    fn closed_flow_rejects_everything() {
        let mut flow = HybridFlow::new();
        flow.observe(w(1), "r", "x", 0.5).unwrap();
        flow.close(0.5).unwrap();
        assert_eq!(
            flow.observe(w(2), "r", "y", 0.5).unwrap_err(),
            HybridError::AlreadyClosed
        );
        assert_eq!(
            flow.correct(0, w(2), 0.5).unwrap_err(),
            HybridError::AlreadyClosed
        );
        assert_eq!(
            flow.testify(w(2), "r", "t", 0.5).unwrap_err(),
            HybridError::AlreadyClosed
        );
        assert_eq!(flow.close(0.5).unwrap_err(), HybridError::AlreadyClosed);
    }

    #[test]
    fn report_without_testimonials_uses_fact_quality() {
        let mut flow = HybridFlow::new();
        flow.observe(w(1), "r", "x", 0.6).unwrap();
        let r = flow.close(0.5).unwrap();
        assert!((r.overall_quality - 0.6).abs() < 1e-12);
        assert_eq!(r.testimony_quality, 0.0);
    }

    #[test]
    fn empty_flow_closes_with_zero_quality() {
        let mut flow = HybridFlow::new();
        let r = flow.close(0.5).unwrap();
        assert_eq!(r.overall_quality, 0.0);
        assert!(r.regions.is_empty());
    }

    #[test]
    fn corrections_with_weak_corrector_keep_quality() {
        let mut flow = HybridFlow::new();
        let f = flow.observe(w(1), "r", "x", 0.9).unwrap();
        let q = flow.correct(f, w(2), 0.1).unwrap();
        assert_eq!(q, 0.9);
    }

    #[test]
    fn error_display() {
        assert!(HybridError::NoSuchFact(1).to_string().contains("fact"));
        assert!(HybridError::SelfCorrection(w(2))
            .to_string()
            .contains("own"));
        assert!(HybridError::AlreadyClosed.to_string().contains("closed"));
    }
}
