//! # crowd4u-collab — worker collaboration schemes and result coordination
//!
//! The paper's central claim is that collaborative tasks need explicit
//! *result coordination*, achieved through three schemes (§2.3):
//!
//! * **sequential** ([`sequential`]) — members improve each other's
//!   contributions through dynamically generated follow-up tasks
//!   (translation, find-fix-verify);
//! * **simultaneous** ([`simultaneous`]) — SNS-id solicitation, then a
//!   shared workspace ([`workspace`], the Google-Docs stand-in), with one
//!   member submitting on behalf of the team (citizen journalism);
//! * **hybrid** ([`hybrid`]) — both interleaved: sequential fact
//!   collection/correction plus simultaneous testimonials (surveillance).
//!
//! [`quality`] documents the explicit quality model that lets the
//! benchmarks measure which scheme suits which workload, and [`monitor`]
//! implements the "Crowd4U monitors their collaboration" requirement
//! (stall detection driving re-assignment).
//!
//! Identifier of the scheme in platform APIs: [`Scheme`].

pub mod hybrid;
pub mod monitor;
pub mod quality;
pub mod sequential;
pub mod simultaneous;
pub mod workspace;

/// The three worker collaboration schemes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    Sequential,
    Simultaneous,
    Hybrid,
}

impl Scheme {
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Sequential => "sequential",
            Scheme::Simultaneous => "simultaneous",
            Scheme::Hybrid => "hybrid",
        }
    }

    pub fn all() -> [Scheme; 3] {
        [Scheme::Sequential, Scheme::Simultaneous, Scheme::Hybrid]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

pub mod prelude {
    pub use crate::hybrid::{FactRecord, HybridError, HybridFlow, SurveillanceReport, Testimonial};
    pub use crate::monitor::{CollabMonitor, MonitorEvent, Verdict};
    pub use crate::quality::{correction, sequential_improve, simultaneous_merge};
    pub use crate::sequential::{
        Artifact, Pass, SequentialError, SequentialFlow, SequentialPipeline, StageKind,
    };
    pub use crate::simultaneous::{Phase, SessionError, SimultaneousSession};
    pub use crate::workspace::{
        Contribution, MergedDocument, Section, SharedWorkspace, WorkspaceError,
    };
    pub use crate::Scheme;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Sequential.to_string(), "sequential");
        assert_eq!(Scheme::all().len(), 3);
        for s in Scheme::all() {
            assert!(!s.name().is_empty());
        }
    }
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use crowd4u_crowd::profile::WorkerId;
    use proptest::prelude::*;

    proptest! {
        /// Sequential quality is monotone non-decreasing for any pass
        /// sequence and stays within [0,1].
        #[test]
        fn sequential_monotone(
            initial in 0.0f64..1.0,
            passes in proptest::collection::vec(0.0f64..1.0, 1..10)
        ) {
            let art = Artifact::produced_by(WorkerId(0), "x", initial);
            let pipeline = SequentialPipeline {
                stages: vec![StageKind::Improve; passes.len()],
            };
            let mut flow = SequentialFlow::start(pipeline, art);
            let mut last = initial;
            for (i, q) in passes.iter().enumerate() {
                let a = flow.advance(WorkerId(1 + i as u64), "y", *q).unwrap();
                prop_assert!(a.quality + 1e-12 >= last);
                prop_assert!((0.0..=1.0).contains(&a.quality));
                last = a.quality;
            }
        }

        /// Workspace merge contains every non-empty contribution exactly once.
        #[test]
        fn workspace_merge_complete(texts in proptest::collection::vec("[a-z]{1,8}", 1..12)) {
            let members: Vec<WorkerId> = (0..3).map(WorkerId).collect();
            let mut ws = SharedWorkspace::new("t", members.clone(), &["s"]);
            for (i, t) in texts.iter().enumerate() {
                ws.contribute(members[i % 3], 0, t.clone(), 0.5).unwrap();
            }
            let merged = ws.sections()[0].merged_text();
            let lines: Vec<&str> = merged.lines().collect();
            prop_assert_eq!(lines.len(), texts.len());
            for t in &texts {
                prop_assert!(lines.contains(&t.as_str()));
            }
        }

        /// Hybrid report quality bounded by [0,1] for arbitrary flows.
        #[test]
        fn hybrid_quality_bounded(
            facts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..8),
            testimony in proptest::collection::vec(0.0f64..1.0, 0..8),
            affinity in 0.0f64..1.0,
        ) {
            let mut flow = HybridFlow::new();
            for (i, (oq, cq)) in facts.iter().enumerate() {
                let f = flow.observe(WorkerId(i as u64), "r", "d", *oq).unwrap();
                flow.correct(f, WorkerId(1000 + i as u64), *cq).unwrap();
            }
            for (i, q) in testimony.iter().enumerate() {
                flow.testify(WorkerId(2000 + i as u64), "r", "s", *q).unwrap();
            }
            let r = flow.close(affinity).unwrap();
            prop_assert!((0.0..=1.0).contains(&r.overall_quality));
            prop_assert_eq!(r.n_facts, facts.len());
            prop_assert_eq!(r.n_testimonials, testimony.len());
        }
    }
}
