//! Sequential collaboration: "team members collaborate with each other
//! through the tasks dynamically generated based on other members' task
//! results. For example, after a worker translates a sentence into another
//! language, a task for checking the result is dynamically generated, and
//! the result is sent to another team member." (§2.3)

use crate::quality::sequential_improve;
use crowd4u_crowd::profile::WorkerId;
use std::fmt;

/// What kind of pass a stage performs (labels for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Produce the initial artifact (transcribe, draft, observe).
    Produce,
    /// Improve/repair the current artifact (translate pass, fix).
    Improve,
    /// Check and certify (verify).
    Verify,
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StageKind::Produce => "produce",
            StageKind::Improve => "improve",
            StageKind::Verify => "verify",
        })
    }
}

/// One entry in an artifact's provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Pass {
    pub worker: WorkerId,
    pub kind: StageKind,
    pub quality_after: f64,
}

/// The work product travelling through a sequential pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    pub content: String,
    pub quality: f64,
    pub history: Vec<Pass>,
}

impl Artifact {
    /// Create the initial artifact from a producer's contribution.
    pub fn produced_by(worker: WorkerId, content: impl Into<String>, quality: f64) -> Artifact {
        let q = quality.clamp(0.0, 1.0);
        Artifact {
            content: content.into(),
            quality: q,
            history: vec![Pass {
                worker,
                kind: StageKind::Produce,
                quality_after: q,
            }],
        }
    }

    pub fn passes(&self) -> usize {
        self.history.len()
    }

    /// Workers who touched the artifact, in order, without duplicates.
    pub fn contributors(&self) -> Vec<WorkerId> {
        let mut out = Vec::new();
        for p in &self.history {
            if !out.contains(&p.worker) {
                out.push(p.worker);
            }
        }
        out
    }
}

/// Plan of a sequential pipeline: the ordered stage kinds after production.
/// The classic find-fix-verify pattern is `[Improve, Verify]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialPipeline {
    pub stages: Vec<StageKind>,
}

impl SequentialPipeline {
    /// Find-fix-verify (Bernstein et al., the pattern §1 cites for
    /// crowd-powered authoring).
    pub fn find_fix_verify() -> SequentialPipeline {
        SequentialPipeline {
            stages: vec![StageKind::Improve, StageKind::Verify],
        }
    }

    /// Translation pipeline: improve passes then a verify pass.
    pub fn translation(rounds: usize) -> SequentialPipeline {
        let mut stages = vec![StageKind::Improve; rounds.max(1)];
        stages.push(StageKind::Verify);
        SequentialPipeline { stages }
    }

    pub fn len(&self) -> usize {
        self.stages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Error from advancing a sequential flow.
#[derive(Debug, Clone, PartialEq)]
pub enum SequentialError {
    /// All stages already executed.
    Complete,
    /// The same worker may not perform two consecutive passes — sequential
    /// collaboration is about *each other's* contributions (§2.3).
    SameWorkerTwice(WorkerId),
}

impl fmt::Display for SequentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequentialError::Complete => f.write_str("pipeline already complete"),
            SequentialError::SameWorkerTwice(w) => {
                write!(f, "worker {w} cannot perform two consecutive passes")
            }
        }
    }
}

/// A sequential collaboration in progress.
#[derive(Debug, Clone)]
pub struct SequentialFlow {
    pipeline: SequentialPipeline,
    artifact: Artifact,
    next_stage: usize,
}

impl SequentialFlow {
    pub fn start(pipeline: SequentialPipeline, artifact: Artifact) -> SequentialFlow {
        SequentialFlow {
            pipeline,
            artifact,
            next_stage: 0,
        }
    }

    pub fn is_complete(&self) -> bool {
        self.next_stage >= self.pipeline.stages.len()
    }

    /// The stage awaiting a worker, if any.
    pub fn pending_stage(&self) -> Option<StageKind> {
        self.pipeline.stages.get(self.next_stage).copied()
    }

    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Perform the next pass. `contribution` replaces or annotates the
    /// content; `worker_quality` drives the quality model.
    pub fn advance(
        &mut self,
        worker: WorkerId,
        contribution: impl Into<String>,
        worker_quality: f64,
    ) -> Result<&Artifact, SequentialError> {
        let Some(kind) = self.pending_stage() else {
            return Err(SequentialError::Complete);
        };
        if let Some(last) = self.artifact.history.last() {
            if last.worker == worker {
                return Err(SequentialError::SameWorkerTwice(worker));
            }
        }
        let new_quality = sequential_improve(self.artifact.quality, worker_quality);
        let content = contribution.into();
        if !content.is_empty() {
            self.artifact.content = content;
        }
        self.artifact.quality = new_quality;
        self.artifact.history.push(Pass {
            worker,
            kind,
            quality_after: new_quality,
        });
        self.next_stage += 1;
        Ok(&self.artifact)
    }

    /// Finish and return the artifact (only when complete).
    pub fn finish(self) -> Result<Artifact, SequentialError> {
        if self.is_complete() {
            Ok(self.artifact)
        } else {
            Err(SequentialError::Complete)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn full_pipeline_improves_quality() {
        let art = Artifact::produced_by(w(1), "draft subtitles", 0.4);
        let mut flow = SequentialFlow::start(SequentialPipeline::translation(2), art);
        assert_eq!(flow.pending_stage(), Some(StageKind::Improve));
        flow.advance(w(2), "better subtitles", 0.7).unwrap();
        flow.advance(w(3), "best subtitles", 0.8).unwrap();
        assert_eq!(flow.pending_stage(), Some(StageKind::Verify));
        flow.advance(w(4), "", 0.9).unwrap();
        assert!(flow.is_complete());
        let done = flow.finish().unwrap();
        assert!(done.quality > 0.4);
        assert_eq!(done.passes(), 4);
        assert_eq!(done.content, "best subtitles"); // empty verify keeps content
        assert_eq!(done.contributors(), vec![w(1), w(2), w(3), w(4)]);
        // quality monotone along history
        for pair in done.history.windows(2) {
            assert!(pair[1].quality_after >= pair[0].quality_after);
        }
    }

    #[test]
    fn same_worker_consecutive_rejected() {
        let art = Artifact::produced_by(w(1), "x", 0.5);
        let mut flow = SequentialFlow::start(SequentialPipeline::find_fix_verify(), art);
        let err = flow.advance(w(1), "y", 0.6).unwrap_err();
        assert_eq!(err, SequentialError::SameWorkerTwice(w(1)));
        // alternating is fine, including a comeback
        flow.advance(w(2), "y", 0.6).unwrap();
        flow.advance(w(1), "z", 0.7).unwrap();
        assert!(flow.is_complete());
    }

    #[test]
    fn advancing_complete_pipeline_errors() {
        let art = Artifact::produced_by(w(1), "x", 0.5);
        let mut flow = SequentialFlow::start(
            SequentialPipeline {
                stages: vec![StageKind::Verify],
            },
            art,
        );
        flow.advance(w(2), "", 0.9).unwrap();
        assert_eq!(
            flow.advance(w(3), "", 0.9).unwrap_err(),
            SequentialError::Complete
        );
    }

    #[test]
    fn finish_requires_completion() {
        let art = Artifact::produced_by(w(1), "x", 0.5);
        let flow = SequentialFlow::start(SequentialPipeline::find_fix_verify(), art);
        assert!(flow.finish().is_err());
    }

    #[test]
    fn pipelines_shapes() {
        assert_eq!(SequentialPipeline::find_fix_verify().len(), 2);
        let t = SequentialPipeline::translation(3);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.stages[3], StageKind::Verify);
        // rounds floor at 1
        assert_eq!(SequentialPipeline::translation(0).len(), 2);
    }

    #[test]
    fn produced_by_clamps() {
        let a = Artifact::produced_by(w(1), "x", 7.0);
        assert_eq!(a.quality, 1.0);
    }

    #[test]
    fn stage_kind_display() {
        assert_eq!(StageKind::Produce.to_string(), "produce");
        assert_eq!(StageKind::Improve.to_string(), "improve");
        assert_eq!(StageKind::Verify.to_string(), "verify");
        assert!(SequentialError::Complete.to_string().contains("complete"));
    }
}
