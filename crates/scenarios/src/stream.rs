//! Scenario event streams: the contract between scenario logic and a
//! partitioned runtime.
//!
//! A scenario is interactive — team formation reads task state, interest
//! collection reads eligibility — so its decisions cannot be precomputed.
//! The streaming model therefore splits a scenario into two halves:
//!
//! * the **decision shadow**: a [`Driver`] running the scenario logic
//!   against its own platform slice, exactly as a single-threaded run
//!   would. Every state change it makes is journaled, and the journal,
//!   decoded and timestamped, *is* the scenario's event stream
//!   ([`Driver::ops_since`] / [`Driver::drain_due`]);
//! * the **authoritative runtime**: whatever applies the yielded stream —
//!   a single platform ([`apply_stream`], the serial reference) or the
//!   sharded runtime's ingestion gate (`crowd4u-runtime::scenario`), where
//!   one scenario's projects span shards and several scenarios interleave.
//!
//! Because the stream is exactly the shadow's journal, replaying it in
//! order reproduces the shadow's platform state byte-identically; pushed
//! through `ShardedRuntime` mailboxes it inherits the PR 3/4 determinism
//! contract (merged journal byte-identical to the serial journal at any
//! shard count).
//!
//! # Interleaving several scenarios
//!
//! [`merge_traces`] interleaves any number of recorded scenario streams by
//! timestamp into one deterministic stream for a shared runtime, remapping
//! ids so the scenarios stay disjoint:
//!
//! * **workers** are offset per scenario (scenario *i*'s crowd follows
//!   scenario *i−1*'s) — each scenario keeps its own seeded crowd, and a
//!   broadcast registration can never overwrite another scenario's
//!   profile. [`merge_traces_with`] in [`CrowdMode::Shared`] instead keeps
//!   every worker reference on the shared registration order (offset 0)
//!   and deduplicates the identical re-registrations — the paper's
//!   one-crowd-many-applications marketplace;
//! * **projects** are renumbered in merged-stream registration order —
//!   exactly the id sequence the (broadcast-lockstep) platform assigns, so
//!   the remap table *predicts* the authoritative ids and task-scoped
//!   events can be rewritten up front (task ids are project-strided);
//! * **clock domains**: when more than one trace merges, trace *i*'s
//!   `ClockAdvanced` and `ProjectRegistered` events are tagged with owner
//!   *i + 1*, so each scenario's recruitment deadlines are set and swept
//!   by its own clock only — another scenario's later clock can no longer
//!   expire a deadline up to one tick early (the PR 5 interleaving
//!   gotcha). A lone trace stays untagged and byte-identical to its
//!   shadow.
//!
//! Scenario accounting then splits the same way the execution did:
//! crowd-simulation observables (answers scheduled, artifact quality,
//! makespan, team affinity) come from the shadow, while platform
//! observables (items completed, teams suggested, reassignments, points)
//! are recomputed from the authoritative runtime via per-project counters
//! and points aggregation ([`platform_side`] + [`assemble_report`]).

use crate::config::{ScenarioConfig, ScenarioReport};
use crate::driver::Driver;
use crate::run_scheme_on;
use crowd4u_collab::Scheme;
use crowd4u_core::error::{PlatformError, ProjectId, TaskId, WorkerId};
use crowd4u_core::events::PlatformEvent;
use crowd4u_core::platform::Crowd4U;
use crowd4u_sim::time::SimTime;
use std::collections::BTreeMap;

/// One step of a scenario's event stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// Apply one platform event (route by its
    /// [`EventScope`](crowd4u_core::events::EventScope)).
    Event(PlatformEvent),
    /// Synchronise every dirty project — a `drain` journal entry; a
    /// sharded runtime turns this into a coordinated drain barrier.
    Drain,
}

/// A stream op stamped with the platform clock at the moment it applied.
/// Stamps are non-decreasing within one scenario's stream; across
/// scenarios they define the deterministic interleaving order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedOp {
    pub at: SimTime,
    pub op: StreamOp,
}

/// How a scenario's `items_completed` is derived from platform state.
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// Count the facts of a derived predicate (e.g. translation's
    /// `published`, surveillance's `verified`).
    Facts(String),
    /// Count completed collaborative tasks of the project (journalism).
    CollabsCompleted,
}

/// A fully recorded scenario: its timed op stream plus everything needed
/// to remap it into a shared runtime and to rebuild its report from
/// authoritative platform state.
#[derive(Debug, Clone)]
pub struct ScenarioTrace {
    pub scheme: Scheme,
    /// The decision shadow's journal, decoded and timestamped.
    pub ops: Vec<TimedOp>,
    /// Worker-id stride: how many workers this scenario registered.
    pub crowd: u64,
    /// The shadow's project ids, in registration order (the remap keys).
    pub projects: Vec<ProjectId>,
    /// Recipe for `items_completed` from platform state.
    pub completion: Completion,
    /// The shadow's own report: the crowd-simulation-side observables
    /// (and, for a lone scenario, the serial reference to compare with).
    pub shadow: ScenarioReport,
}

/// The completion recipe of each built-in scheme.
pub fn completion_for(scheme: Scheme) -> Completion {
    match scheme {
        Scheme::Sequential => Completion::Facts("published".into()),
        Scheme::Simultaneous => Completion::CollabsCompleted,
        Scheme::Hybrid => Completion::Facts("verified".into()),
    }
}

/// Run one scheme on a fresh decision shadow and record its stream.
pub fn record_scheme(
    scheme: Scheme,
    config: &ScenarioConfig,
) -> Result<ScenarioTrace, PlatformError> {
    let mut d = Driver::new(config);
    let shadow = run_scheme_on(&mut d, scheme, config)?;
    let ops = d.ops_since(0)?;
    Ok(ScenarioTrace {
        scheme,
        ops,
        crowd: config.crowd as u64,
        projects: d.platform.project_ids(),
        completion: completion_for(scheme),
        shadow,
    })
}

/// Per-scenario id translation into a shared runtime's id spaces. The
/// identity remap (offset 0, projects mapping to themselves) is what a
/// lone scenario gets — its stream reaches the runtime verbatim.
#[derive(Debug, Clone, Default)]
pub struct IdRemap {
    /// Added to every worker id (scenario crowds are stacked end to end;
    /// zero for every trace of a shared-crowd merge).
    pub worker_offset: u64,
    /// Shadow project id → authoritative project id (merged registration
    /// order). Unmapped ids pass through.
    pub projects: BTreeMap<ProjectId, ProjectId>,
    /// Clock-domain owner stamped onto this trace's `ClockAdvanced` /
    /// `ProjectRegistered` events (`0` = leave events untagged, the lone-
    /// trace identity).
    pub scenario: u64,
}

impl IdRemap {
    pub fn worker(&self, w: WorkerId) -> WorkerId {
        WorkerId(w.0 + self.worker_offset)
    }

    pub fn project(&self, p: ProjectId) -> ProjectId {
        *self.projects.get(&p).unwrap_or(&p)
    }

    /// Task ids are project-strided, so remapping one is recomposing it
    /// under the remapped project (raw ids — project 0 — pass through).
    pub fn task(&self, t: TaskId) -> TaskId {
        if t.project().0 == 0 {
            t
        } else {
            TaskId::compose(self.project(t.project()), t.local())
        }
    }

    /// Rewrite every id an event carries. Exhaustive over the vocabulary:
    /// adding a `PlatformEvent` variant forces a remapping decision here.
    pub fn event(&self, event: PlatformEvent) -> PlatformEvent {
        match event {
            PlatformEvent::WorkerRegistered { mut profile } => {
                profile.id = self.worker(profile.id);
                PlatformEvent::WorkerRegistered { profile }
            }
            PlatformEvent::ProjectRegistered {
                name,
                source,
                factors,
                scheme,
                owner,
            } => PlatformEvent::ProjectRegistered {
                name,
                source,
                factors,
                scheme,
                owner: if self.scenario != 0 {
                    self.scenario
                } else {
                    owner
                },
            },
            PlatformEvent::FactSeeded {
                project,
                pred,
                values,
            } => PlatformEvent::FactSeeded {
                project: self.project(project),
                pred,
                values,
            },
            PlatformEvent::TasksSynced { project } => PlatformEvent::TasksSynced {
                project: self.project(project),
            },
            PlatformEvent::CollabTaskCreated {
                project,
                description,
            } => PlatformEvent::CollabTaskCreated {
                project: self.project(project),
                description,
            },
            PlatformEvent::InterestExpressed { worker, task } => PlatformEvent::InterestExpressed {
                worker: self.worker(worker),
                task: self.task(task),
            },
            PlatformEvent::AssignmentRun { task } => PlatformEvent::AssignmentRun {
                task: self.task(task),
            },
            PlatformEvent::Undertaken { worker, task } => PlatformEvent::Undertaken {
                worker: self.worker(worker),
                task: self.task(task),
            },
            PlatformEvent::ClockAdvanced { to, owner } => PlatformEvent::ClockAdvanced {
                to,
                owner: if self.scenario != 0 {
                    self.scenario
                } else {
                    owner
                },
            },
            PlatformEvent::AnswerSubmitted {
                worker,
                task,
                outputs,
            } => PlatformEvent::AnswerSubmitted {
                worker: self.worker(worker),
                task: self.task(task),
                outputs,
            },
            PlatformEvent::TaskCompleted { task, quality } => PlatformEvent::TaskCompleted {
                task: self.task(task),
                quality,
            },
            PlatformEvent::ActivityRecorded { worker, task } => PlatformEvent::ActivityRecorded {
                worker: self.worker(worker),
                task: self.task(task),
            },
        }
    }
}

/// Several scenario streams interleaved by timestamp into one
/// deterministic, id-remapped stream for a shared runtime.
#[derive(Debug, Clone)]
pub struct MergedStream {
    /// `(trace index, remapped op)` in stream order.
    pub ops: Vec<(usize, StreamOp)>,
    /// The id translation applied to each trace, by trace index.
    pub remaps: Vec<IdRemap>,
}

/// How [`merge_traces_with`] treats the traces' worker populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrowdMode {
    /// Offset each trace's worker ids past the previous trace's crowd:
    /// scenarios keep disjoint populations (the pre-marketplace default).
    Disjoint,
    /// Keep every trace's worker references on the shared registration
    /// order (offset 0): all scenarios draw from **one** crowd. Requires
    /// every trace to have been recorded over the same seeded population —
    /// equal crowd sizes, and byte-identical profiles wherever ids
    /// coincide; the duplicate registrations are deduplicated out of the
    /// merged stream (the first trace to register a worker wins, later
    /// identical registrations vanish).
    Shared,
}

/// Interleave recorded traces by `(timestamp, trace index, position)` —
/// stable, shard-count-independent, and identical on every run — and
/// remap ids so the scenarios stay disjoint. Global project ids are
/// assigned by registration order *within the merged stream*, which is
/// exactly the sequence a broadcast-lockstep platform will assign when
/// the stream is applied, so every task-scoped event can be rewritten to
/// its authoritative id before submission.
pub fn merge_traces(traces: &[ScenarioTrace]) -> MergedStream {
    merge_traces_with(traces, CrowdMode::Disjoint).expect("disjoint merge is total")
}

/// [`merge_traces`] with an explicit [`CrowdMode`]. In
/// [`CrowdMode::Shared`] the merge fails if the traces were not recorded
/// over one common population (different crowd sizes, or the same worker
/// id registering with different profiles) — silent profile clobbering
/// across scenarios is exactly what the disjoint mode exists to prevent.
///
/// Sharing is sound because applying a trace's project-scoped events never
/// reads another project's state, and the one cross-project surface the
/// traces do share — the team-observation history feeding the skill
/// estimator — is append-only during a run (profiles change only through
/// an explicit `refresh_skills`, which no stream op performs). Deadlines
/// stay isolated via the per-trace clock domains tagged by the merge.
pub fn merge_traces_with(
    traces: &[ScenarioTrace],
    mode: CrowdMode,
) -> Result<MergedStream, PlatformError> {
    // A lone trace must merge to the identity stream (byte-identical to
    // its shadow journal), so clock-domain tags only appear when traces
    // actually interleave.
    let tag = |i: usize| if traces.len() > 1 { i as u64 + 1 } else { 0 };
    let mut remaps: Vec<IdRemap> = Vec::with_capacity(traces.len());
    let mut offset = 0u64;
    for (i, t) in traces.iter().enumerate() {
        remaps.push(IdRemap {
            worker_offset: offset,
            projects: BTreeMap::new(),
            scenario: tag(i),
        });
        if mode == CrowdMode::Disjoint {
            offset += t.crowd;
        } else if t.crowd != traces[0].crowd {
            return Err(PlatformError::BadEvent(format!(
                "shared-crowd merge needs one common population: trace 0 \
                 registered {} workers, trace {i} registered {}",
                traces[0].crowd, t.crowd
            )));
        }
    }
    let mut tagged: Vec<(SimTime, usize, usize)> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        for (pos, op) in t.ops.iter().enumerate() {
            tagged.push((op.at, i, pos));
        }
    }
    tagged.sort_unstable();
    let mut next_project = 0u64;
    let mut registered: Vec<usize> = vec![0; traces.len()];
    let mut seen_workers: BTreeMap<WorkerId, crowd4u_crowd::profile::WorkerProfile> =
        BTreeMap::new();
    let mut ops = Vec::with_capacity(tagged.len());
    for (_, i, pos) in tagged {
        let out = match &traces[i].ops[pos].op {
            StreamOp::Drain => StreamOp::Drain,
            StreamOp::Event(e) => {
                if matches!(e, PlatformEvent::ProjectRegistered { .. }) {
                    next_project += 1;
                    let local = traces[i].projects[registered[i]];
                    registered[i] += 1;
                    remaps[i].projects.insert(local, ProjectId(next_project));
                }
                let remapped = remaps[i].event(e.clone());
                if mode == CrowdMode::Shared {
                    if let PlatformEvent::WorkerRegistered { profile } = &remapped {
                        match seen_workers.get(&profile.id) {
                            // The shared population registers once; later
                            // traces' identical registrations drop out.
                            Some(first) if first == profile => continue,
                            Some(_) => {
                                return Err(PlatformError::BadEvent(format!(
                                    "shared-crowd merge: trace {i} re-registers worker \
                                     {} with a different profile",
                                    profile.id
                                )))
                            }
                            None => {
                                seen_workers.insert(profile.id, profile.clone());
                            }
                        }
                    }
                }
                StreamOp::Event(remapped)
            }
        };
        ops.push((i, out));
    }
    Ok(MergedStream { ops, remaps })
}

/// Apply a merged stream to one platform — the serial reference executor
/// every streamed run is compared against. Semantics mirror a shard
/// mailbox exactly: events apply in stream order with per-event error
/// tolerance (an event the platform rejects is dropped and counted, never
/// journaled), and [`StreamOp::Drain`] synchronises every dirty project.
/// Returns the number of dropped events. Interleaved scenarios touch
/// disjoint projects and workers, so drops only arise from genuine
/// cross-stream timing (e.g. a recruitment deadline swept a tick early by
/// another scenario's clock) — a lone scenario's stream applies with zero
/// drops.
pub fn apply_stream(platform: &mut Crowd4U, merged: &MergedStream) -> Result<u64, PlatformError> {
    let mut dropped = 0u64;
    for (_, op) in &merged.ops {
        match op {
            StreamOp::Drain => {
                platform.drain_events()?;
            }
            StreamOp::Event(e) => {
                if platform.apply_event(e.clone()).is_err() {
                    dropped += 1;
                }
            }
        }
    }
    Ok(dropped)
}

/// The report fields recomputed from authoritative platform state (as
/// opposed to the crowd-simulation-side fields the shadow supplies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformSide {
    pub items_completed: usize,
    pub teams_formed: u64,
    pub reassignments: u64,
    pub points_awarded: i64,
}

impl PlatformSide {
    /// Accumulate another project's contribution (multi-project traces).
    pub fn absorb(&mut self, other: PlatformSide) {
        self.items_completed += other.items_completed;
        self.teams_formed += other.teams_formed;
        self.reassignments += other.reassignments;
        self.points_awarded += other.points_awarded;
    }
}

/// Derive one project's scenario accounting from the platform that owns
/// it: completion via the trace's [`Completion`] recipe, team formation
/// and reassignment via the project-scoped counters, points via the
/// project's ledger (`points_of`-style aggregation — the ledger is
/// project-owned, so summing a project's leaderboard is the per-scenario
/// slice of the global per-worker totals).
pub fn platform_side(
    p: &Crowd4U,
    project: ProjectId,
    completion: &Completion,
) -> Result<PlatformSide, PlatformError> {
    let proj = p.project(project)?;
    let items_completed = match completion {
        Completion::Facts(pred) => proj.engine.fact_count(pred)?,
        Completion::CollabsCompleted => p.project_counter(project, "collab_completed") as usize,
    };
    let points_awarded = proj.engine.leaderboard().iter().map(|(_, pts)| pts).sum();
    Ok(PlatformSide {
        items_completed,
        teams_formed: p.project_counter(project, "teams_suggested"),
        reassignments: p.project_counter(project, "deadlines_missed"),
        points_awarded,
    })
}

/// Join the two halves of a streamed scenario's accounting: platform
/// observables from the authoritative runtime, crowd-side observables from
/// the decision shadow.
pub fn assemble_report(shadow: &ScenarioReport, side: PlatformSide) -> ScenarioReport {
    ScenarioReport {
        scheme: shadow.scheme,
        items_completed: side.items_completed,
        items_total: shadow.items_total,
        mean_quality: shadow.mean_quality,
        makespan: shadow.makespan,
        answers: shadow.answers,
        teams_formed: side.teams_formed,
        reassignments: side.reassignments,
        mean_team_affinity: shadow.mean_team_affinity,
        points_awarded: side.points_awarded,
    }
}

/// Per-worker split of one scenario's share of a shared crowd's
/// accounting: the points its projects awarded each worker, and the
/// collaborative completions each worker contributed to it. The
/// split-accounting invariant (ARCHITECTURE.md §11): summing a worker's
/// cells across every scenario's ledger reproduces the platform-wide
/// `points_of` and team-observation totals exactly — projects partition
/// both, so nothing is double-counted or lost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SplitLedger {
    /// Points per worker (workers with zero points are absent).
    pub points: BTreeMap<WorkerId, i64>,
    /// Collaborative completions the worker was a team member of.
    pub collabs: BTreeMap<WorkerId, u64>,
}

impl SplitLedger {
    /// Merge another project's split into this scenario's ledger.
    pub fn absorb(&mut self, other: SplitLedger) {
        for (w, v) in other.points {
            *self.points.entry(w).or_insert(0) += v;
        }
        for (w, v) in other.collabs {
            *self.collabs.entry(w).or_insert(0) += v;
        }
    }

    /// Total points the scenario awarded across its crowd.
    pub fn total_points(&self) -> i64 {
        self.points.values().sum()
    }

    /// Total per-member collaborative completions.
    pub fn total_collabs(&self) -> u64 {
        self.collabs.values().sum()
    }
}

/// One project's per-worker split, read off the platform (or shard slice)
/// that owns it.
pub fn project_split(p: &Crowd4U, project: ProjectId) -> SplitLedger {
    let mut out = SplitLedger::default();
    for w in p.workers.iter_ids() {
        let pts = p.project_points_of(project, w);
        if pts != 0 {
            out.points.insert(w, pts);
        }
        let collabs = p.worker_collabs_in(project, w);
        if collabs != 0 {
            out.collabs.insert(w, collabs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig::default()
            .with_crowd(20)
            .with_items(1)
            .with_seed(5)
    }

    #[test]
    fn recorded_stream_is_the_shadow_journal() {
        let cfg = small();
        let trace = record_scheme(Scheme::Sequential, &cfg).unwrap();
        // A reference shadow run journals the identical op sequence.
        let mut d = Driver::new(&cfg);
        run_scheme_on(&mut d, Scheme::Sequential, &cfg).unwrap();
        assert_eq!(trace.ops, d.ops_since(0).unwrap());
        assert_eq!(trace.ops.len(), d.platform.journal().len());
        // Stamps never decrease within a stream.
        for w in trace.ops.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(trace.projects.len(), 1);
    }

    #[test]
    fn lone_trace_merges_to_identity() {
        let trace = record_scheme(Scheme::Hybrid, &small()).unwrap();
        let ops = trace.ops.clone();
        let merged = merge_traces(std::slice::from_ref(&trace));
        assert_eq!(merged.remaps[0].worker_offset, 0);
        for p in &trace.projects {
            assert_eq!(merged.remaps[0].project(*p), *p);
        }
        let back: Vec<StreamOp> = merged.ops.into_iter().map(|(_, op)| op).collect();
        let want: Vec<StreamOp> = ops.into_iter().map(|t| t.op).collect();
        assert_eq!(back, want);
    }

    #[test]
    fn lone_stream_replays_the_shadow_byte_identically() {
        let cfg = small();
        let mut d = Driver::new(&cfg);
        run_scheme_on(&mut d, Scheme::Simultaneous, &cfg).unwrap();
        let trace = record_scheme(Scheme::Simultaneous, &cfg).unwrap();
        let merged = merge_traces(std::slice::from_ref(&trace));
        let mut fresh = Crowd4U::new();
        fresh.controller.algorithm = cfg.algorithm;
        let dropped = apply_stream(&mut fresh, &merged).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(fresh.journal().dump(), d.platform.journal().dump());
        assert_eq!(fresh.state_dump(), d.platform.state_dump());
    }

    #[test]
    fn platform_side_matches_the_shadow_report() {
        for scheme in Scheme::all() {
            let cfg = small();
            let trace = record_scheme(scheme, &cfg).unwrap();
            let merged = merge_traces(std::slice::from_ref(&trace));
            let mut fresh = Crowd4U::new();
            fresh.controller.algorithm = cfg.algorithm;
            apply_stream(&mut fresh, &merged).unwrap();
            let mut side = PlatformSide::default();
            for p in &trace.projects {
                side.absorb(platform_side(&fresh, *p, &trace.completion).unwrap());
            }
            let report = assemble_report(&trace.shadow, side);
            assert_eq!(
                report.items_completed, trace.shadow.items_completed,
                "{scheme}"
            );
            assert_eq!(report.teams_formed, trace.shadow.teams_formed, "{scheme}");
            assert_eq!(report.reassignments, trace.shadow.reassignments, "{scheme}");
            assert_eq!(
                report.points_awarded, trace.shadow.points_awarded,
                "{scheme}"
            );
        }
    }

    #[test]
    fn remap_rewrites_every_id_family() {
        let remap = IdRemap {
            worker_offset: 100,
            projects: BTreeMap::from([(ProjectId(1), ProjectId(7))]),
            scenario: 0,
        };
        assert_eq!(remap.worker(WorkerId(3)), WorkerId(103));
        assert_eq!(remap.project(ProjectId(1)), ProjectId(7));
        assert_eq!(remap.project(ProjectId(2)), ProjectId(2)); // unmapped passes
        assert_eq!(
            remap.task(TaskId::compose(ProjectId(1), 4)),
            TaskId::compose(ProjectId(7), 4)
        );
        assert_eq!(remap.task(TaskId(9)), TaskId(9)); // raw id space passes
        let e = remap.event(PlatformEvent::AnswerSubmitted {
            worker: WorkerId(2),
            task: TaskId::compose(ProjectId(1), 1),
            outputs: vec![],
        });
        assert_eq!(
            e,
            PlatformEvent::AnswerSubmitted {
                worker: WorkerId(102),
                task: TaskId::compose(ProjectId(7), 1),
                outputs: vec![],
            }
        );
    }
}
