//! Demo scenario 3 (paper §2.5): surveillance with hybrid coordination.
//!
//! "The goal of this task is to collect as much data about facts and
//! testimonials in different geographic regions and at different time
//! periods. Under this scheme, some workers contribute to fact collection
//! in a sequence, correcting each others' observations, and others provide
//! testimonials separately and simultaneously."
//!
//! Per region: a surveillance *team* (formed on affinity — same-area
//! workers pair better, §2.2) observes and corrects sequentially, while
//! non-team witnesses testify simultaneously; the hybrid flow joins both.

use crate::config::{ScenarioConfig, ScenarioReport};
use crate::driver::Driver;
use crowd4u_collab::prelude::*;
use crowd4u_collab::Scheme;
use crowd4u_core::prelude::*;
use crowd4u_crowd::profile::WorkerId;
use crowd4u_storage::prelude::Value;

const CYLOG: &str = "\
rel region(rid: id, name: str).
open confirm(rid: id, name: str) -> (credible: bool) points 1.
rel verified(rid: id).
verified(R) :- region(R, N), confirm(R, N, OK), OK = true.
";

/// Run the surveillance scenario on a fresh platform.
pub fn run(config: &ScenarioConfig) -> Result<ScenarioReport, PlatformError> {
    let mut d = Driver::new(config);
    run_on(&mut d, config)
}

/// Run the surveillance scenario on a prepared [`Driver`] — the entry
/// point the sharded runtime uses against a shard's resident platform.
/// Report accounting is scenario-scoped (counter deltas, per-project
/// points).
pub fn run_on(d: &mut Driver, config: &ScenarioConfig) -> Result<ScenarioReport, PlatformError> {
    let teams_before = d.platform.counters.get("teams_suggested");
    let misses_before = d.platform.counters.get("deadlines_missed");
    let proj = d.collab_project(
        "surveillance",
        CYLOG,
        config,
        Scheme::Hybrid,
        Some("surveillance"),
    )?;

    let mut reports: Vec<SurveillanceReport> = Vec::new();
    let mut answers = 0u64;
    let mut affinities = Vec::new();

    for i in 0..config.items {
        let rid = i as u64 + 1;
        let region_name = format!("region-{i}");
        d.platform.seed_fact(
            proj,
            "region",
            vec![Value::Id(rid), Value::Str(region_name.clone())],
        )?;
        let task = d
            .platform
            .create_collab_task(proj, format!("surveil {region_name}"))?;
        d.collect_interest(task)?;
        let Some(team) = d.form_team(task, 3)? else {
            continue;
        };
        let aff = d.team_affinity(&team.members);
        affinities.push(aff);

        // Sequential track: observations + corrections within the team.
        let mut flow = HybridFlow::new();
        let mut max_delay = crowd4u_sim::time::SimDuration::ZERO;
        for (k, &obs) in team.members.iter().enumerate() {
            let (q, delay) = d
                .crowd
                .agent_mut(obs)
                .map(|a| (a.produce_quality(Some("surveillance")), a.response_delay()))
                .unwrap_or((0.5, Default::default()));
            // Observation rounds happen in sequence: time accumulates.
            d.pass_time(delay)?;
            let fact = flow
                .observe(
                    obs,
                    region_name.clone(),
                    format!("fact {k} in {region_name}"),
                    q,
                )
                .map_err(|e| PlatformError::BadTaskState {
                    task,
                    state: e.to_string(),
                })?;
            // The next teammate corrects the observation.
            let corrector = team.members[(k + 1) % team.members.len()];
            if corrector != obs {
                let cq = d
                    .crowd
                    .agent_mut(corrector)
                    .map(|a| a.produce_quality(Some("surveillance")))
                    .unwrap_or(0.5);
                flow.correct(fact, corrector, cq)
                    .map_err(|e| PlatformError::BadTaskState {
                        task,
                        state: e.to_string(),
                    })?;
                answers += 1;
            }
            answers += 1;
        }

        // Simultaneous track: witnesses outside the team testify in parallel.
        let witnesses: Vec<WorkerId> = d
            .platform
            .workers
            .iter_ids()
            .filter(|w| !team.members.contains(w))
            .take(6)
            .collect();
        let mut witness_qs = Vec::new();
        for &w in &witnesses {
            let Some(agent) = d.crowd.agent_mut(w) else {
                continue;
            };
            if !agent.declares_interest() {
                continue;
            }
            let delay = agent.response_delay();
            if delay > max_delay {
                max_delay = delay;
            }
            let q = agent.produce_quality(Some("surveillance"));
            witness_qs.push(q);
            flow.testify(w, region_name.clone(), format!("testimony by {w}"), q)
                .map_err(|e| PlatformError::BadTaskState {
                    task,
                    state: e.to_string(),
                })?;
            answers += 1;
        }
        d.pass_time(max_delay)?;
        let witness_ids: Vec<WorkerId> = witnesses;
        let witness_aff = d.team_affinity(&witness_ids);
        let report = flow
            .close(witness_aff)
            .map_err(|e| PlatformError::BadTaskState {
                task,
                state: e.to_string(),
            })?;
        d.platform
            .complete_collab_task(task, report.overall_quality)?;

        // The confirm micro-tasks: a team member vouches for the region
        // when the report is strong enough. Ingested as one event batch.
        d.platform.sync_tasks(proj)?;
        let voucher = team.members[0];
        let credible = report.overall_quality >= 0.5;
        let vouch_events: Vec<PlatformEvent> = d
            .platform
            .pool
            .open_tasks(Some(proj))
            .iter()
            .filter(|t| t.is_micro() && d.platform.relations.is_eligible(voucher, t.id))
            .map(|t| PlatformEvent::AnswerSubmitted {
                worker: voucher,
                task: t.id,
                outputs: vec![Value::Bool(credible)],
            })
            .collect();
        let batch = d.platform.apply_batch(vouch_events)?;
        answers += batch.applied as u64;
        reports.push(report);
    }
    d.platform.drain_events()?;

    let verified = d.platform.project(proj)?.engine.fact_count("verified")?;
    let mean_quality = if reports.is_empty() {
        0.0
    } else {
        reports.iter().map(|r| r.overall_quality).sum::<f64>() / reports.len() as f64
    };
    let mean_aff = if affinities.is_empty() {
        0.0
    } else {
        affinities.iter().sum::<f64>() / affinities.len() as f64
    };
    // Project-scoped points: only this scenario's project contributes.
    let points: i64 = d
        .platform
        .project(proj)?
        .engine
        .leaderboard()
        .iter()
        .map(|(_, pts)| pts)
        .sum();
    Ok(ScenarioReport {
        scheme: Scheme::Hybrid,
        items_completed: verified,
        items_total: config.items,
        mean_quality,
        makespan: d.elapsed(),
        answers,
        teams_formed: d.platform.counters.get("teams_suggested") - teams_before,
        reassignments: d.platform.counters.get("deadlines_missed") - misses_before,
        mean_team_affinity: mean_aff,
        points_awarded: points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surveillance_verifies_regions() {
        let cfg = ScenarioConfig::default()
            .with_crowd(50)
            .with_items(4)
            .with_seed(17);
        let r = run(&cfg).unwrap();
        assert_eq!(r.scheme, Scheme::Hybrid);
        assert!(r.items_completed > 0, "no regions verified: {r}");
        assert!(r.mean_quality > 0.3);
        assert!(r.answers > r.items_completed as u64 * 3);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ScenarioConfig::default()
            .with_crowd(30)
            .with_items(3)
            .with_seed(6);
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.items_completed, b.items_completed);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn corrections_lift_quality_over_raw_observation() {
        // With hybrid coordination, correction + testimony lifts quality
        // over what a lone average observer would produce (~0.6-0.7).
        let cfg = ScenarioConfig::default()
            .with_crowd(60)
            .with_items(5)
            .with_seed(23);
        let r = run(&cfg).unwrap();
        assert!(
            r.mean_quality > 0.55,
            "hybrid coordination should lift quality: {r}"
        );
    }
}
