//! # crowd4u-scenarios — the three demonstration applications of §2.5
//!
//! Reusable, seeded workloads built on the full platform stack:
//!
//! * [`translation`] — video subtitle generation + translation
//!   (**sequential** collaboration: chained CyLog open predicates
//!   transcribe → translate → review);
//! * [`journalism`] — citizen journalism (**simultaneous** collaboration:
//!   SNS-id protocol + shared workspace, one submitter per team);
//! * [`surveillance`] — geographic surveillance (**hybrid**: sequential
//!   observation/correction + simultaneous testimonials);
//! * [`mixed`] — all three applications interleaved by timestamp on one
//!   platform (the paper's "many heterogeneous applications, one
//!   declarative platform" shape), built on the [`stream`] layer that
//!   records a scenario's event stream for replay through a sharded
//!   runtime's ingestion gate (see `docs/SCENARIOS.md`).
//!
//! Each scenario takes a [`config::ScenarioConfig`] and returns a
//! [`config::ScenarioReport`] with completion counts, quality, makespan,
//! team metrics and points. The examples and the benchmark harness both
//! consume these entry points, so paper experiments E1/E5/E9 are a single
//! function call.

pub mod config;
pub mod driver;
pub mod journalism;
pub mod mixed;
pub mod stream;
pub mod surveillance;
pub mod translation;

pub use config::{ScenarioConfig, ScenarioReport};
pub use driver::Driver;
pub use mixed::MixedReport;
pub use stream::{merge_traces, record_scheme, ScenarioTrace};

use crowd4u_collab::Scheme;
use crowd4u_core::prelude::PlatformError;

/// Run one scenario by scheme (convenience for sweeps).
pub fn run_scheme(
    scheme: Scheme,
    config: &ScenarioConfig,
) -> Result<ScenarioReport, PlatformError> {
    match scheme {
        Scheme::Sequential => translation::run(config),
        Scheme::Simultaneous => journalism::run(config),
        Scheme::Hybrid => surveillance::run(config),
    }
}

/// Run one scenario by scheme on a prepared [`Driver`] — the sharded
/// runtime's entry point: the driver wraps a shard's resident platform
/// ([`Driver::on_platform`]), so scenario workloads execute wherever their
/// project lives.
pub fn run_scheme_on(
    d: &mut Driver,
    scheme: Scheme,
    config: &ScenarioConfig,
) -> Result<ScenarioReport, PlatformError> {
    match scheme {
        Scheme::Sequential => translation::run_on(d, config),
        Scheme::Simultaneous => journalism::run_on(d, config),
        Scheme::Hybrid => surveillance::run_on(d, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scheme_dispatches_all_three() {
        let cfg = ScenarioConfig::default()
            .with_crowd(30)
            .with_items(2)
            .with_seed(2);
        for scheme in Scheme::all() {
            let r = run_scheme(scheme, &cfg).unwrap();
            assert_eq!(r.scheme, scheme);
            assert_eq!(r.items_total, 2);
        }
    }

    /// The paper's §1 claim in miniature: each scheme is *appropriate* for
    /// its task type. We verify the structural signature: sequential does
    /// ≥3 passes per item (transcribe/translate/review); simultaneous
    /// parallelises (makespan per item lower than sequential); hybrid
    /// produces both facts and testimonials (most answers per item).
    #[test]
    fn scheme_signatures_match_paper_claims() {
        let cfg = ScenarioConfig::default()
            .with_crowd(60)
            .with_items(4)
            .with_seed(33);
        let seq = translation::run(&cfg).unwrap();
        let sim = journalism::run(&cfg).unwrap();
        let hyb = surveillance::run(&cfg).unwrap();
        if seq.items_completed > 0 {
            assert!(seq.answers >= 3 * seq.items_completed as u64);
        }
        if sim.items_completed > 0 && seq.items_completed > 0 {
            let sim_per_item = sim.makespan.ticks() as f64 / sim.items_completed as f64;
            let seq_per_item = seq.makespan.ticks() as f64 / seq.items_completed as f64;
            assert!(
                sim_per_item < seq_per_item * 3.0,
                "simultaneous should not be drastically slower per item \
                 (sim {sim_per_item}, seq {seq_per_item})"
            );
        }
        if hyb.items_completed > 0 {
            assert!(hyb.answers as usize >= hyb.items_completed * 3);
        }
    }
}
