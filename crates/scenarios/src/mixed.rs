//! Demo scenario 4: the **mixed** workload — all three §2.5 applications
//! interleaved by timestamp on one platform.
//!
//! The paper's pitch is precisely this shape: one declarative platform
//! hosting heterogeneous crowdsourcing applications (translation,
//! journalism, surveillance) *at the same time*, rather than one silo per
//! application. The mixed scenario records each scheme's event stream on
//! its own decision shadow ([`crate::stream::record_scheme`]), interleaves
//! the three streams by simulated time with per-scenario id remapping
//! ([`crate::stream::merge_traces`]), and applies the merged stream to a
//! single platform — the serial reference. `crowd4u-runtime::scenario`
//! pushes the identical stream through the ingestion gate instead, so the
//! three applications genuinely share one sharded runtime (their projects
//! land on different shards) and the merged journal is byte-identical to
//! this module's serial run.

use crate::config::{ScenarioConfig, ScenarioReport};
use crate::stream::{
    apply_stream, assemble_report, merge_traces, merge_traces_with, platform_side, project_split,
    record_scheme, CrowdMode, PlatformSide, ScenarioTrace, SplitLedger,
};
use crowd4u_collab::Scheme;
use crowd4u_core::prelude::*;
use crowd4u_sim::time::SimDuration;
use std::fmt;

/// The mixed workload's report: one [`ScenarioReport`] per scheme (in
/// [`Scheme::all`] order) plus the cross-scheme aggregates a requester
/// dashboard would show.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Per-scheme reports, in [`Scheme::all`] order.
    pub reports: Vec<ScenarioReport>,
    /// Items completed across all schemes.
    pub items_completed: usize,
    /// Items attempted across all schemes.
    pub items_total: usize,
    /// Crowd answers across all schemes.
    pub answers: u64,
    /// Points awarded across all schemes (the `points_of`-style aggregate
    /// over every project ledger).
    pub points_awarded: i64,
    /// The slowest scheme's makespan — the workload ran interleaved, so
    /// wall-clock is the maximum, not the sum.
    pub makespan: SimDuration,
}

impl MixedReport {
    /// Aggregate per-scheme reports into the combined view.
    pub fn combine(reports: Vec<ScenarioReport>) -> MixedReport {
        MixedReport {
            items_completed: reports.iter().map(|r| r.items_completed).sum(),
            items_total: reports.iter().map(|r| r.items_total).sum(),
            answers: reports.iter().map(|r| r.answers).sum(),
            points_awarded: reports.iter().map(|r| r.points_awarded).sum(),
            makespan: reports
                .iter()
                .map(|r| r.makespan)
                .max()
                .unwrap_or(SimDuration::ZERO),
            reports,
        }
    }
}

impl fmt::Display for MixedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mixed completed={}/{} answers={} points={} makespan={}",
            self.items_completed,
            self.items_total,
            self.answers,
            self.points_awarded,
            self.makespan
        )
    }
}

/// Record the three schemes' streams, each on its own decision shadow
/// under the shared config (one trace per scheme, [`Scheme::all`] order).
pub fn record(config: &ScenarioConfig) -> Result<Vec<ScenarioTrace>, PlatformError> {
    Scheme::all()
        .into_iter()
        .map(|scheme| record_scheme(scheme, config))
        .collect()
}

/// Build the per-scheme reports for a merged run from the authoritative
/// platform state: platform-side fields from `lookup` (which resolves a
/// project's owning platform slice — the platform itself here, an owner
/// shard in the runtime), crowd-side fields from each trace's shadow.
pub fn reports_from<E>(
    traces: &[ScenarioTrace],
    merged: &crate::stream::MergedStream,
    mut lookup: impl FnMut(ProjectId, &crate::stream::Completion) -> Result<PlatformSide, E>,
) -> Result<Vec<ScenarioReport>, E> {
    traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut side = PlatformSide::default();
            for local in &t.projects {
                side.absorb(lookup(merged.remaps[i].project(*local), &t.completion)?);
            }
            Ok(assemble_report(&t.shadow, side))
        })
        .collect()
}

/// Run the mixed workload serially: record, merge, apply to one fresh
/// platform, and rebuild the reports from that platform's per-project
/// state. This is the byte-level reference for the streamed run — the
/// sharded runtime's merged journal must equal this platform's journal.
pub fn run(config: &ScenarioConfig) -> Result<MixedReport, PlatformError> {
    let traces = record(config)?;
    let merged = merge_traces(&traces);
    let mut platform = Crowd4U::new();
    platform.controller.algorithm = config.algorithm;
    apply_stream(&mut platform, &merged)?;
    let reports = reports_from(&traces, &merged, |project, completion| {
        platform_side(&platform, project, completion)
    })?;
    Ok(MixedReport::combine(reports))
}

/// The mixed workload over **one shared crowd**: per-scheme reports plus
/// each scheme's per-worker split of the shared population's points and
/// collaboration contributions.
#[derive(Debug, Clone)]
pub struct SharedMixedReport {
    /// The combined per-scheme view, same shape as [`run`]'s.
    pub mixed: MixedReport,
    /// Per-scheme split ledgers, in [`Scheme::all`] (= trace) order.
    pub splits: Vec<SplitLedger>,
    /// Size of the one shared population.
    pub crowd: u64,
}

/// Build each trace's [`SplitLedger`] from the authoritative runtime:
/// `lookup` resolves one (authoritative) project's per-worker split off
/// its owning platform slice, and a trace's ledger absorbs all of its
/// projects' splits.
pub fn splits_from<E>(
    traces: &[ScenarioTrace],
    merged: &crate::stream::MergedStream,
    mut lookup: impl FnMut(ProjectId) -> Result<SplitLedger, E>,
) -> Result<Vec<SplitLedger>, E> {
    traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut ledger = SplitLedger::default();
            for local in &t.projects {
                ledger.absorb(lookup(merged.remaps[i].project(*local))?);
            }
            Ok(ledger)
        })
        .collect()
}

/// Run the mixed workload serially over one shared crowd: every scheme's
/// trace is recorded from the same seeded population (same config → same
/// shadow crowd), merged in [`CrowdMode::Shared`], and applied to one
/// fresh platform where each worker exists **once** and collects points
/// and affinity history across all three applications. This is the serial
/// reference for `crowd4u-runtime`'s shared streamed run.
pub fn run_shared(config: &ScenarioConfig) -> Result<SharedMixedReport, PlatformError> {
    let traces = record(config)?;
    let merged = merge_traces_with(&traces, CrowdMode::Shared)?;
    let mut platform = Crowd4U::new();
    platform.controller.algorithm = config.algorithm;
    apply_stream(&mut platform, &merged)?;
    let reports = reports_from(&traces, &merged, |project, completion| {
        platform_side(&platform, project, completion)
    })?;
    let splits = splits_from(&traces, &merged, |project| {
        Ok::<_, PlatformError>(project_split(&platform, project))
    })?;
    Ok(SharedMixedReport {
        mixed: MixedReport::combine(reports),
        splits,
        crowd: traces.first().map(|t| t.crowd).unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ScenarioConfig {
        ScenarioConfig::default()
            .with_crowd(24)
            .with_items(2)
            .with_seed(13)
    }

    #[test]
    fn mixed_runs_all_three_schemes_on_one_platform() {
        let r = run(&cfg()).unwrap();
        assert_eq!(r.reports.len(), 3);
        let schemes: Vec<Scheme> = r.reports.iter().map(|x| x.scheme).collect();
        assert_eq!(schemes, Scheme::all().to_vec());
        assert_eq!(r.items_total, 6);
        assert!(r.items_completed > 0, "nothing completed: {r}");
        assert!(r.answers > 0);
        assert_eq!(
            r.points_awarded,
            r.reports.iter().map(|x| x.points_awarded).sum::<i64>()
        );
        assert_eq!(
            r.makespan,
            r.reports.iter().map(|x| x.makespan).max().unwrap()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run(&cfg()).unwrap();
        let b = run(&cfg()).unwrap();
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.items_completed, y.items_completed);
            assert_eq!(x.answers, y.answers);
            assert_eq!(x.points_awarded, y.points_awarded);
            assert_eq!(x.makespan, y.makespan);
        }
    }

    #[test]
    fn shared_crowd_splits_sum_to_the_whole() {
        let r = run_shared(&cfg()).unwrap();
        assert_eq!(r.crowd, 24);
        assert_eq!(r.splits.len(), 3);
        // Each scheme's per-worker points split sums to exactly that
        // scheme's report total…
        for (split, rep) in r.splits.iter().zip(&r.mixed.reports) {
            assert_eq!(split.total_points(), rep.points_awarded, "{}", rep.scheme);
        }
        // …and the whole platform total is the sum of the parts.
        assert_eq!(
            r.splits.iter().map(|s| s.total_points()).sum::<i64>(),
            r.mixed.points_awarded
        );
        // One population, several applications: some shared worker shows
        // up in more than one scheme's ledger.
        let mut seen = std::collections::BTreeMap::new();
        for split in &r.splits {
            for w in split.points.keys().chain(split.collabs.keys()) {
                *seen.entry(*w).or_insert(0usize) += 1;
            }
        }
        assert!(
            seen.values().any(|&n| n >= 2),
            "no worker contributed to two applications: {seen:?}"
        );
    }

    #[test]
    fn interleaving_preserves_each_schemes_accounting() {
        // The three schemes share one platform but must not contaminate
        // each other's reports: each matches its standalone shadow run.
        let config = cfg();
        let r = run(&config).unwrap();
        for (got, scheme) in r.reports.iter().zip(Scheme::all()) {
            let want = crate::run_scheme(scheme, &config).unwrap();
            assert_eq!(got.items_completed, want.items_completed, "{scheme}");
            assert_eq!(got.answers, want.answers, "{scheme}");
            assert_eq!(got.teams_formed, want.teams_formed, "{scheme}");
            assert_eq!(got.reassignments, want.reassignments, "{scheme}");
            assert_eq!(got.points_awarded, want.points_awarded, "{scheme}");
            assert_eq!(got.makespan, want.makespan, "{scheme}");
        }
    }
}
