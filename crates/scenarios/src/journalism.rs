//! Demo scenario 2 (paper §2.5): citizen journalism.
//!
//! "Workers are instructed to write a short report on a topic of their
//! choice (chosen from a list of available topics). Here, workers can work
//! simultaneously, contributing to different parts of the same text."
//!
//! One collaborative task per topic; the suggested team runs the
//! simultaneous-session protocol (SNS-id solicitation → shared workspace →
//! one member submits for the team).

use crate::config::{ScenarioConfig, ScenarioReport};
use crate::driver::Driver;
use crowd4u_collab::prelude::*;
use crowd4u_collab::Scheme;
use crowd4u_core::prelude::*;
use crowd4u_storage::prelude::Value;

const CYLOG: &str = "\
rel topic(tid: id, title: str).
open headline(tid: id, title: str) -> (headline: str) points 1.
rel report(tid: id, headline: str).
report(T, H) :- topic(T, X), headline(T, X, H).
";

const SECTIONS: [&str; 3] = ["what happened", "context", "witness voices"];

/// Run the citizen-journalism scenario on a fresh platform.
pub fn run(config: &ScenarioConfig) -> Result<ScenarioReport, PlatformError> {
    let mut d = Driver::new(config);
    run_on(&mut d, config)
}

/// Run the citizen-journalism scenario on a prepared [`Driver`] — the
/// entry point the sharded runtime uses against a shard's resident
/// platform. Report accounting is scenario-scoped (counter deltas,
/// per-project points).
pub fn run_on(d: &mut Driver, config: &ScenarioConfig) -> Result<ScenarioReport, PlatformError> {
    let teams_before = d.platform.counters.get("teams_suggested");
    let misses_before = d.platform.counters.get("deadlines_missed");
    let proj = d.collab_project(
        "citizen journalism",
        CYLOG,
        config,
        Scheme::Simultaneous,
        Some("journalism"),
    )?;

    let mut qualities = Vec::new();
    let mut answers = 0u64;
    let mut affinities = Vec::new();
    let mut completed = 0usize;

    for i in 0..config.items {
        let tid = i as u64 + 1;
        d.platform.seed_fact(
            proj,
            "topic",
            vec![Value::Id(tid), Value::Str(format!("topic {i}"))],
        )?;
        let task = d
            .platform
            .create_collab_task(proj, format!("report on topic {i}"))?;
        d.collect_interest(task)?;
        let Some(team) = d.form_team(task, 3)? else {
            continue;
        };
        let aff = d.team_affinity(&team.members);
        affinities.push(aff);

        // Simultaneous protocol.
        let mut session =
            SimultaneousSession::new(format!("report {i}"), team.members.clone(), &SECTIONS, aff);
        for &m in &team.members {
            session
                .provide_sns_id(m, format!("{m}@example.net"))
                .map_err(|e| PlatformError::BadTaskState {
                    task,
                    state: e.to_string(),
                })?;
        }
        // Everyone contributes to the section matching their position,
        // wrapping when the team is larger than the section list.
        let mut max_delay = crowd4u_sim::time::SimDuration::ZERO;
        for (k, &m) in team.members.iter().enumerate() {
            let Some(agent) = d.crowd.agent_mut(m) else {
                continue;
            };
            let delay = agent.response_delay();
            if delay > max_delay {
                max_delay = delay;
            }
            let q = agent.produce_quality(Some("journalism"));
            let text = format!("paragraph by {m} on topic {i}");
            session
                .contribute(m, k % SECTIONS.len(), text, q)
                .map_err(|e| PlatformError::BadTaskState {
                    task,
                    state: e.to_string(),
                })?;
            answers += 1;
        }
        // Simultaneous work: elapsed time is the slowest member, not the sum.
        d.pass_time(max_delay)?;
        let (doc, quality) =
            session
                .submit(team.members[0])
                .map_err(|e| PlatformError::BadTaskState {
                    task,
                    state: e.to_string(),
                })?;
        assert_eq!(doc.team.len(), team.members.len());
        qualities.push(quality);
        d.platform.complete_collab_task(task, quality)?;
        completed += 1;

        // The headline micro-tasks go to the submitting member, ingested as
        // one event batch (a single drain syncs the project afterwards).
        d.platform.sync_tasks(proj)?;
        let mut headline_events = Vec::new();
        for t in d.platform.pool.open_tasks(Some(proj)) {
            let TaskBody::Micro { inputs, .. } = &t.body else {
                continue;
            };
            let headline = format!("HEADLINE: {}", inputs[1]);
            let writer = team.members[0];
            if d.platform.relations.is_eligible(writer, t.id) {
                headline_events.push(PlatformEvent::AnswerSubmitted {
                    worker: writer,
                    task: t.id,
                    outputs: vec![Value::Str(headline)],
                });
            }
        }
        let report = d.platform.apply_batch(headline_events)?;
        answers += report.applied as u64;
    }
    d.platform.drain_events()?;

    let mean_quality = if qualities.is_empty() {
        0.0
    } else {
        qualities.iter().sum::<f64>() / qualities.len() as f64
    };
    let mean_aff = if affinities.is_empty() {
        0.0
    } else {
        affinities.iter().sum::<f64>() / affinities.len() as f64
    };
    // Project-scoped points: only this scenario's project contributes.
    let points: i64 = d
        .platform
        .project(proj)?
        .engine
        .leaderboard()
        .iter()
        .map(|(_, pts)| pts)
        .sum();
    Ok(ScenarioReport {
        scheme: Scheme::Simultaneous,
        items_completed: completed,
        items_total: config.items,
        mean_quality,
        makespan: d.elapsed(),
        answers,
        teams_formed: d.platform.counters.get("teams_suggested") - teams_before,
        reassignments: d.platform.counters.get("deadlines_missed") - misses_before,
        mean_team_affinity: mean_aff,
        points_awarded: points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journalism_produces_reports() {
        let cfg = ScenarioConfig::default()
            .with_crowd(50)
            .with_items(5)
            .with_seed(21);
        let r = run(&cfg).unwrap();
        assert_eq!(r.scheme, Scheme::Simultaneous);
        assert!(r.items_completed > 0, "no reports: {r}");
        assert!(r.mean_quality > 0.3);
        assert!(r.mean_team_affinity > 0.0);
        assert!(r.answers as usize >= r.items_completed * 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ScenarioConfig::default()
            .with_crowd(30)
            .with_items(3)
            .with_seed(8);
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.items_completed, b.items_completed);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn simultaneous_makespan_beats_item_count_scaling() {
        // Because members work in parallel, makespan grows sublinearly in
        // team size; mostly it tracks item count. Sanity: doubling items
        // should not 10x the makespan.
        let base = run(&ScenarioConfig::default()
            .with_crowd(40)
            .with_items(2)
            .with_seed(4))
        .unwrap();
        let more = run(&ScenarioConfig::default()
            .with_crowd(40)
            .with_items(4)
            .with_seed(4))
        .unwrap();
        assert!(more.makespan.ticks() < base.makespan.ticks() * 10 + 1);
    }
}
