//! Demo scenario 1 (paper §2.5): video subtitle generation and translation.
//!
//! "Workers are instructed to first transcribe speech into text in order to
//! generate subtitles in the original language. Then, other workers are
//! asked to translate the resulting subtitles into the target language. It
//! has been shown that for text translation, sequential coordination
//! whereby workers improve each others' contributions, is the most
//! effective scheme."
//!
//! The CyLog program chains three open predicates — transcribe → translate
//! → review — so each human answer dynamically generates the next question
//! (sequential collaboration, §2.3). A team is formed once per batch; its
//! members perform the passes in rotation, and per-item quality follows the
//! sequential improvement model.

use crate::config::{ScenarioConfig, ScenarioReport};
use crate::driver::Driver;
use crowd4u_collab::prelude::*;
use crowd4u_collab::Scheme;
use crowd4u_core::prelude::*;
use crowd4u_crowd::profile::WorkerId;
use crowd4u_storage::prelude::Value;

const CYLOG: &str = "\
rel utterance(uid: id, speech: str).
open transcribe(uid: id, speech: str) -> (subtitle: str) points 2.
open translate(uid: id, subtitle: str) -> (translated: str) points 3.
open review(uid: id, translated: str) -> (ok: bool) points 1.
rel published(uid: id, translated: str).
published(U, T) :- utterance(U, S), transcribe(U, S, SUB), translate(U, SUB, T), review(U, T, OK), OK = true.
";

/// Run the translation scenario on a fresh platform.
pub fn run(config: &ScenarioConfig) -> Result<ScenarioReport, PlatformError> {
    let mut d = Driver::new(config);
    run_on(&mut d, config)
}

/// Run the translation scenario on a prepared [`Driver`] — the entry point
/// the sharded runtime uses against a shard's resident platform. All
/// report accounting is scenario-scoped (counter deltas, per-project
/// points), so earlier scenarios on the same platform don't leak in.
pub fn run_on(d: &mut Driver, config: &ScenarioConfig) -> Result<ScenarioReport, PlatformError> {
    let teams_before = d.platform.counters.get("teams_suggested");
    let misses_before = d.platform.counters.get("deadlines_missed");
    let proj = d.collab_project(
        "video subtitle translation",
        CYLOG,
        config,
        Scheme::Sequential,
        Some("translation"),
    )?;

    // Seed the utterances (the video's sentences).
    for i in 0..config.items {
        d.platform.seed_fact(
            proj,
            "utterance",
            vec![
                Value::Id(i as u64 + 1),
                Value::Str(format!("speech segment {i}")),
            ],
        )?;
    }

    // Form the batch team through the collaborative task.
    let batch = d.platform.create_collab_task(proj, "subtitle the video")?;
    d.collect_interest(batch)?;
    let Some(team) = d.form_team(batch, 4)? else {
        // No team at all: report an empty run (requester must relax input).
        return Ok(empty_report(d, config, teams_before, misses_before));
    };
    let team_affinity = d.team_affinity(&team.members);

    // Per-item sequential flows tracked alongside the CyLog pipeline.
    let mut flows: Vec<Option<SequentialFlow>> = (0..config.items).map(|_| None).collect();
    let mut qualities = Vec::new();
    let mut answers = 0u64;
    let mut rotation = 0usize;
    let next_worker = |rotation: &mut usize, exclude: Option<WorkerId>| -> WorkerId {
        // Round-robin over the team, skipping the previous worker so
        // "workers improve each others' contributions".
        loop {
            let w = team.members[*rotation % team.members.len()];
            *rotation += 1;
            if Some(w) != exclude {
                return w;
            }
        }
    };

    // Drive the CyLog task pool until no open questions remain. Each round
    // schedules every answer as a timed event (sequential scheme: one
    // worker after another, so delivery times accumulate) and pumps them
    // through the platform; the closing drain synchronises the project and
    // surfaces the next pass's questions.
    d.platform.sync_tasks(proj)?;
    loop {
        let open: Vec<(TaskId, String, Vec<Value>)> = d
            .platform
            .pool
            .open_tasks(Some(proj))
            .iter()
            .filter_map(|t| match &t.body {
                TaskBody::Micro {
                    predicate, inputs, ..
                } => Some((t.id, predicate.clone(), inputs.clone())),
                _ => None,
            })
            .collect();
        if open.is_empty() {
            break;
        }
        let done_before = d.platform.counters.get("micro_tasks_completed");
        let mut at = d.platform.now();
        for (task, pred, inputs) in open {
            let uid = inputs[0].as_id().expect("uid input") as usize - 1;
            let last = flows[uid]
                .as_ref()
                .and_then(|f| f.artifact().history.last().map(|p| p.worker));
            let worker = next_worker(&mut rotation, last);
            let skill_q = d
                .crowd
                .agent_mut(worker)
                .map(|a| a.produce_quality(Some("translation")))
                .unwrap_or(0.5);
            let delay = d
                .crowd
                .agent_mut(worker)
                .map(|a| a.response_delay())
                .unwrap_or_default();
            at += delay;
            let outputs: Vec<Value> = match pred.as_str() {
                "transcribe" => {
                    let art = Artifact::produced_by(worker, format!("sub-{uid}"), skill_q);
                    flows[uid] = Some(SequentialFlow::start(
                        SequentialPipeline::translation(1),
                        art,
                    ));
                    vec![Value::Str(format!("sub-{uid}"))]
                }
                "translate" => {
                    if let Some(flow) = flows[uid].as_mut() {
                        let _ = flow.advance(worker, format!("fr-sub-{uid}"), skill_q);
                    }
                    vec![Value::Str(format!("fr-sub-{uid}"))]
                }
                "review" => {
                    let q = flows[uid]
                        .as_mut()
                        .map(|flow| {
                            let _ = flow.advance(worker, "", skill_q);
                            flow.artifact().quality
                        })
                        .unwrap_or(0.0);
                    let ok = q >= 0.5;
                    if ok {
                        qualities.push(q);
                    }
                    vec![Value::Bool(ok)]
                }
                other => panic!("unexpected open predicate {other}"),
            };
            d.schedule_at(
                at,
                PlatformEvent::AnswerSubmitted {
                    worker,
                    task,
                    outputs,
                },
            );
            answers += 1;
        }
        d.pump()?;
        // Defensive: if no scheduled answer landed, stop rather than spin.
        if d.platform.counters.get("micro_tasks_completed") == done_before {
            break;
        }
    }

    // Close out the batch task with the mean quality.
    let mean_quality = if qualities.is_empty() {
        0.0
    } else {
        qualities.iter().sum::<f64>() / qualities.len() as f64
    };
    d.platform.complete_collab_task(batch, mean_quality)?;

    let published = d.platform.project(proj)?.engine.fact_count("published")?;
    // Points are project-scoped so scenarios sharing a platform (one shard
    // running several jobs) don't contaminate each other's reports.
    let engine = &d.platform.project(proj)?.engine;
    let points: i64 = team.members.iter().map(|m| engine.points_of(m.0)).sum();
    Ok(ScenarioReport {
        scheme: Scheme::Sequential,
        items_completed: published,
        items_total: config.items,
        mean_quality,
        makespan: d.elapsed(),
        answers,
        teams_formed: d.platform.counters.get("teams_suggested") - teams_before,
        reassignments: d.platform.counters.get("deadlines_missed") - misses_before,
        mean_team_affinity: team_affinity,
        points_awarded: points,
    })
}

fn empty_report(
    d: &Driver,
    config: &ScenarioConfig,
    teams_before: u64,
    misses_before: u64,
) -> ScenarioReport {
    ScenarioReport {
        scheme: Scheme::Sequential,
        items_completed: 0,
        items_total: config.items,
        mean_quality: 0.0,
        makespan: d.elapsed(),
        answers: 0,
        // Teams may have been suggested and still never fully undertaken;
        // count them like the successful path does (and like the
        // platform's own per-project accounting does) instead of
        // hard-coding zero.
        teams_formed: d.platform.counters.get("teams_suggested") - teams_before,
        reassignments: d.platform.counters.get("deadlines_missed") - misses_before,
        mean_team_affinity: 0.0,
        points_awarded: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_pipeline_publishes_items() {
        let cfg = ScenarioConfig::default()
            .with_crowd(40)
            .with_items(6)
            .with_seed(3);
        let r = run(&cfg).unwrap();
        assert_eq!(r.scheme, Scheme::Sequential);
        assert!(r.items_completed > 0, "nothing published: {r}");
        assert!(r.items_completed <= 6);
        // 3 answers per published item at minimum
        assert!(r.answers >= 3 * r.items_completed as u64);
        assert!(r.mean_quality > 0.4, "quality too low: {r}");
        assert!(r.points_awarded > 0);
        assert!(r.makespan.ticks() > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ScenarioConfig::default()
            .with_crowd(30)
            .with_items(4)
            .with_seed(11);
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.items_completed, b.items_completed);
        assert_eq!(a.answers, b.answers);
        assert!((a.mean_quality - b.mean_quality).abs() < 1e-12);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = run(&ScenarioConfig::default()
            .with_crowd(30)
            .with_items(4)
            .with_seed(1))
        .unwrap();
        let b = run(&ScenarioConfig::default()
            .with_crowd(30)
            .with_items(4)
            .with_seed(2))
        .unwrap();
        // At least one observable differs (makespan is effectively continuous).
        assert!(
            a.makespan != b.makespan || a.answers != b.answers || a.mean_quality != b.mean_quality
        );
    }

    #[test]
    fn tiny_crowd_reports_gracefully() {
        let cfg = ScenarioConfig {
            crowd: 2,
            min_team: 5,
            max_team: 6,
            items: 2,
            ..Default::default()
        };
        let r = run(&cfg).unwrap();
        assert_eq!(r.items_completed, 0);
        assert_eq!(r.answers, 0);
    }
}
