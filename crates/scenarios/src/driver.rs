//! Common glue driving the platform with the simulated crowd: registering
//! a population, collecting interest, running assignment with deadline
//! handling, and tracking elapsed simulated time.
//!
//! Since the event-core refactor the driver is a thin scheduler: simulated
//! worker actions (interest, undertakes, answers) become timed
//! [`PlatformEvent`]s on a discrete-event queue, and [`Driver::pump`]
//! delivers them to the platform in time order — advancing the clock batch
//! by batch and draining dirty projects once at the end, exactly the way a
//! production front-end would feed the ingestion API.

use crate::config::ScenarioConfig;
use crate::stream::{StreamOp, TimedOp};
use crowd4u_assign::prelude::Team;
use crowd4u_collab::Scheme;
use crowd4u_core::events::DRAIN_KIND;
use crowd4u_core::prelude::*;
use crowd4u_crowd::population::{generate, Population, PopulationConfig};
use crowd4u_crowd::profile::WorkerId;
use crowd4u_forms::admin::DesiredFactors;
use crowd4u_sim::engine::Simulation;
use crowd4u_sim::rng::SimRng;
use crowd4u_sim::time::{SimDuration, SimTime};

/// A platform + population pair with a shared clock.
pub struct Driver {
    pub platform: Crowd4U,
    pub crowd: Population,
    pub rng: SimRng,
    /// Timed platform events awaiting delivery (the simulated "network").
    events: Simulation<PlatformEvent>,
    start: SimTime,
    /// Stream-scan cache: the platform clock after decoding the journal
    /// prefix `[..scanned.0]`. Lets the incremental [`Driver::drain_due`]
    /// loop stamp each new op without re-decoding the whole journal —
    /// O(total) across a scenario instead of O(n²).
    scanned: (usize, SimTime),
}

impl Driver {
    /// Build the world: a seeded crowd registered on a fresh platform, as
    /// one registration batch through the event-ingestion path.
    pub fn new(config: &ScenarioConfig) -> Driver {
        Driver::on_platform(Crowd4U::new(), config)
    }

    /// Build the world on an **existing** platform — the sharded runtime
    /// uses this to run a scenario against the `Crowd4U` slice a shard
    /// already owns. The seeded crowd is registered through the same batch
    /// ingestion path (re-registering a worker id updates its profile), the
    /// configured algorithm is installed, and elapsed time is measured from
    /// the platform's current clock.
    pub fn on_platform(mut platform: Crowd4U, config: &ScenarioConfig) -> Driver {
        let mut rng = SimRng::seed_from(config.seed);
        let crowd = generate(
            &PopulationConfig {
                size: config.crowd,
                ..Default::default()
            },
            &mut rng,
        );
        platform.controller.algorithm = config.algorithm;
        let registrations: Vec<PlatformEvent> = crowd
            .agents
            .iter()
            .map(|agent| PlatformEvent::WorkerRegistered {
                profile: agent.profile.clone(),
            })
            .collect();
        platform
            .apply_batch(registrations)
            .expect("worker registration cannot fail");
        let start = platform.now();
        Driver {
            platform,
            crowd,
            rng,
            events: Simulation::new(),
            start,
            scanned: (0, SimTime::ZERO),
        }
    }

    /// Hand the platform back (the sharded runtime restores the shard's
    /// slice with this after a scenario job finishes).
    pub fn into_platform(self) -> Crowd4U {
        self.platform
    }

    /// Schedule a platform event for delivery at an absolute time.
    pub fn schedule_at(&mut self, at: SimTime, event: PlatformEvent) {
        self.events.schedule(at, event);
    }

    /// Schedule a platform event for delivery after a delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: PlatformEvent) {
        let at = self.platform.now() + delay;
        self.events.schedule(at, event);
    }

    /// Deliver every scheduled event in time order: the platform clock
    /// advances to each batch's tick (processing deadlines on the way), the
    /// batch is applied, and dirty projects are synchronised once at the
    /// end. Worker actions that became invalid in flight — e.g. an
    /// undertake arriving after its recruitment deadline expired — are
    /// dropped and counted, like a production platform rejecting a stale
    /// request.
    ///
    /// Deadline boundary: "unless all suggested workers start … **by** the
    /// specified deadline" is inclusive, so deadlines strictly before a
    /// batch's tick are processed first, the batch's events are applied,
    /// and only then does the sweep at the tick itself run — an undertake
    /// arriving exactly at its recruitment deadline still counts.
    pub fn pump(&mut self) -> Result<(), PlatformError> {
        while let Some((t, batch)) = self.events.next_batch() {
            if t.ticks() > 0 {
                self.platform.advance_to(SimTime(t.ticks() - 1))?;
            }
            for event in batch {
                match self.platform.apply_event(event) {
                    Ok(()) => {}
                    Err(
                        PlatformError::BadTaskState { .. }
                        | PlatformError::NotSuggested { .. }
                        | PlatformError::NotEligible { .. }
                        | PlatformError::NoFeasibleTeam { .. },
                    ) => {
                        self.platform.counters.incr("events_dropped");
                    }
                    Err(e) => return Err(e),
                }
            }
            self.platform.advance_to(t)?;
        }
        self.platform.drain_events()?;
        Ok(())
    }

    // ---- streaming surface ----

    /// Cursor into the driver's op stream: everything journaled so far.
    /// Pair with [`Driver::ops_since`] to extract the timed operations a
    /// stretch of scenario logic produced.
    pub fn journal_cursor(&self) -> usize {
        self.platform.journal().len()
    }

    /// The timed operation stream this driver's platform journaled since
    /// `cursor`, ready for routing through a sharded runtime's ingestion
    /// gate: one [`TimedOp`] per journal entry, stamped with the platform
    /// clock at the moment it applied (`clock` entries stamp their own
    /// target), with `drain` entries yielded as [`StreamOp::Drain`]
    /// markers (a router turns those into coordinated drain barriers).
    ///
    /// Replaying the yielded events in order against a fresh platform —
    /// serially or through `ShardedRuntime` mailboxes — reproduces this
    /// driver's platform state and journal byte-identically: the stream
    /// *is* the journal, decoded and timestamped.
    pub fn ops_since(&self, cursor: usize) -> Result<Vec<TimedOp>, PlatformError> {
        // Resume from the scan cache when it covers a prefix of the
        // request; a cursor before the cached point falls back to a full
        // scan (the clock at an arbitrary earlier index is not cached).
        let (start, clock) = if self.scanned.0 <= cursor {
            self.scanned
        } else {
            (0, SimTime::ZERO)
        };
        Ok(self.scan_from(start, clock, cursor)?.0)
    }

    /// Decode journal entries from `start` (where the clock was `at`,
    /// with `start <= cursor`), emitting ops from `cursor` on; returns
    /// the ops and the clock after the final entry.
    fn scan_from(
        &self,
        start: usize,
        mut at: SimTime,
        cursor: usize,
    ) -> Result<(Vec<TimedOp>, SimTime), PlatformError> {
        debug_assert!(start <= cursor);
        let mut out = Vec::new();
        for (idx, entry) in self.platform.journal().iter().enumerate().skip(start) {
            if entry.kind == DRAIN_KIND {
                if idx >= cursor {
                    out.push(TimedOp {
                        at,
                        op: StreamOp::Drain,
                    });
                }
                continue;
            }
            let event = PlatformEvent::decode(entry)?;
            if let PlatformEvent::ClockAdvanced { to, .. } = &event {
                // The platform clock never moves backwards; a clock entry
                // recorded at-or-before `now` keeps the current stamp.
                if *to > at {
                    at = *to;
                }
            }
            if idx >= cursor {
                out.push(TimedOp {
                    at,
                    op: StreamOp::Event(event),
                });
            }
        }
        Ok((out, at))
    }

    /// Streaming counterpart of [`Driver::pump`]: deliver every due event
    /// to the driver's own platform slice (the scenario's *decision
    /// shadow*) exactly like `pump`, and **yield** the resulting timed
    /// operations — every event applied plus any closing drain — instead
    /// of keeping them private. A scenario front-end pushes the yielded
    /// ops through `IngestGate` handles so the authoritative sharded
    /// runtime applies the same stream; see `crowd4u-runtime::scenario`
    /// and docs/SCENARIOS.md for the full porting recipe.
    pub fn drain_due(&mut self) -> Result<Vec<TimedOp>, PlatformError> {
        let cursor = self.journal_cursor();
        self.pump()?;
        let (start, clock) = if self.scanned.0 <= cursor {
            self.scanned
        } else {
            (0, SimTime::ZERO)
        };
        let (ops, at) = self.scan_from(start, clock, cursor)?;
        // Advance the scan cache to the journal's end, so the next
        // drain_due decodes only its own new suffix.
        self.scanned = (self.journal_cursor(), at);
        Ok(ops)
    }

    /// Desired factors matching the config (language-agnostic by default).
    pub fn factors(&self, config: &ScenarioConfig, skill: Option<&str>) -> DesiredFactors {
        DesiredFactors {
            skill_name: skill.map(str::to_owned),
            min_quality: if skill.is_some() { 0.4 } else { 0.0 },
            min_team: config.min_team,
            max_team: config.max_team,
            recruitment_secs: 1800,
            ..Default::default()
        }
    }

    /// Advance the shared clock by `d` and process platform deadlines.
    pub fn pass_time(&mut self, d: SimDuration) -> Result<(), PlatformError> {
        let t = self.platform.now() + d;
        self.platform.advance_to(t)
    }

    /// Simulated elapsed time since the driver was built.
    pub fn elapsed(&self) -> SimDuration {
        self.platform.now() - self.start
    }

    /// Step (3) of the workflow: every eligible agent looks at the task and
    /// may declare interest (per its behaviour model). Interest arrives in
    /// parallel as timed events and is pumped through the platform — the
    /// clock ends at the slowest responder. Returns how many declared.
    pub fn collect_interest(&mut self, task: TaskId) -> Result<usize, PlatformError> {
        let eligible = self.platform.relations.eligible_workers(task);
        let mut n = 0;
        for w in eligible {
            let Some(agent) = self.crowd.agent_mut(w) else {
                continue;
            };
            let delay = agent.response_delay();
            if agent.declares_interest() {
                self.schedule_after(delay, PlatformEvent::InterestExpressed { worker: w, task });
                n += 1;
            }
        }
        self.pump()?;
        Ok(n)
    }

    /// Steps (4)+(5) with undertake simulation and deadline-driven retry:
    /// returns the team that actually started (task `InProgress`), or
    /// `None` when assignment remained infeasible after `max_rounds`.
    pub fn form_team(
        &mut self,
        task: TaskId,
        max_rounds: usize,
    ) -> Result<Option<Team>, PlatformError> {
        for _ in 0..max_rounds {
            // Pending members awaiting an undertake decision this round.
            let pending: Vec<WorkerId> = match self.platform.pool.get(task)?.state.clone() {
                TaskState::Open => match self.platform.run_assignment(task) {
                    Ok(t) => t.members,
                    Err(PlatformError::NoFeasibleTeam { .. }) => return Ok(None),
                    Err(e) => return Err(e),
                },
                TaskState::Suggested {
                    team, undertaken, ..
                } => team
                    .into_iter()
                    .filter(|m| !undertaken.contains(m))
                    .collect(),
                TaskState::InProgress { team } => return Ok(Some(self.assemble(&team))),
                TaskState::Completed { .. } | TaskState::Abandoned { .. } => return Ok(None),
            };
            // Each pending member independently decides to start; the
            // undertakes arrive as timed events. Even members who hold out
            // consume wall-clock time (the platform waits for them), so the
            // round lasts until the slowest decision either way.
            let mut max_delay = SimDuration::ZERO;
            for &m in &pending {
                let Some(agent) = self.crowd.agent_mut(m) else {
                    continue;
                };
                let delay = agent.response_delay();
                if delay > max_delay {
                    max_delay = delay;
                }
                if agent.commits() {
                    self.schedule_after(delay, PlatformEvent::Undertaken { worker: m, task });
                }
            }
            self.schedule_after(
                max_delay,
                PlatformEvent::ClockAdvanced {
                    to: self.platform.now() + max_delay,
                    owner: 0,
                },
            );
            self.pump()?;
            if let TaskState::InProgress { team } = self.platform.pool.get(task)?.state.clone() {
                return Ok(Some(self.assemble(&team)));
            }
            // Someone held out: jump past the recruitment deadline so the
            // platform re-executes assignment (§2.2.1) and try again.
            self.pass_time(SimDuration::secs(1801))?;
        }
        Ok(None)
    }

    /// Rebuild a [`Team`] record (members + affinity) for a started team.
    fn assemble(&mut self, members: &[WorkerId]) -> Team {
        let affinity = self.team_affinity(members);
        Team {
            members: members.to_vec(),
            affinity,
            quality: 0.0,
            cost: 0.0,
        }
    }

    /// Mean pairwise affinity of a set of workers, via the candidate
    /// submatrix — O(members²), never a full-population matrix build.
    pub fn team_affinity(&self, members: &[WorkerId]) -> f64 {
        self.platform.workers.team_affinity(members)
    }

    /// Register a collaborative project with scheme + factors in one call.
    pub fn collab_project(
        &mut self,
        name: &str,
        cylog: &str,
        config: &ScenarioConfig,
        scheme: Scheme,
        skill: Option<&str>,
    ) -> Result<ProjectId, PlatformError> {
        let f = self.factors(config, skill);
        self.platform.register_project(name, cylog, f, scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "rel item(x: str).\nopen label(x: str) -> (y: str).\nrel out(x: str, y: str).\nout(X, Y) :- item(X), label(X, Y).\n";

    #[test]
    fn driver_builds_world() {
        let cfg = ScenarioConfig::default().with_crowd(20);
        let d = Driver::new(&cfg);
        assert_eq!(d.platform.workers.len(), 20);
        assert_eq!(d.crowd.agents.len(), 20);
        assert_eq!(d.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn interest_collection_is_seeded() {
        let cfg = ScenarioConfig::default().with_crowd(30).with_seed(5);
        let mut d1 = Driver::new(&cfg);
        let mut d2 = Driver::new(&cfg);
        for d in [&mut d1, &mut d2] {
            let proj = d
                .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
                .unwrap();
            let task = d.platform.create_collab_task(proj, "x").unwrap();
            let n = d.collect_interest(task).unwrap();
            assert!(n > 0);
        }
        assert_eq!(d1.elapsed(), d2.elapsed());
        assert_eq!(
            d1.platform.counters.get("interest_expressed"),
            d2.platform.counters.get("interest_expressed")
        );
    }

    #[test]
    fn team_formation_end_to_end() {
        let cfg = ScenarioConfig::default().with_crowd(40).with_seed(9);
        let mut d = Driver::new(&cfg);
        let proj = d
            .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
            .unwrap();
        let task = d.platform.create_collab_task(proj, "x").unwrap();
        d.collect_interest(task).unwrap();
        let team = d.form_team(task, 5).unwrap();
        if let Some(team) = team {
            assert!(team.size() >= cfg.min_team);
            let aff = d.team_affinity(&team.members);
            assert!((0.0..=1.0).contains(&aff));
            // the task is in progress now
            assert_eq!(
                d.platform.pool.get(task).unwrap().state.label(),
                "in-progress"
            );
        }
    }

    #[test]
    fn scheduled_events_deliver_in_time_order() {
        let cfg = ScenarioConfig::default().with_crowd(10).with_seed(2);
        let mut d = Driver::new(&cfg);
        let proj = d
            .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
            .unwrap();
        // Seed a fact late, a worker answer even later; pump delivers both
        // and the closing drain generates + completes the pipeline.
        d.schedule_after(
            SimDuration::secs(10),
            PlatformEvent::FactSeeded {
                project: proj,
                pred: "item".into(),
                values: vec!["a".into()],
            },
        );
        d.pump().unwrap();
        assert_eq!(d.platform.now(), SimTime(10));
        // the drain synced the dirty project: the question became a task
        let task = d.platform.pool.open_tasks(Some(proj))[0].id;
        let worker = d.platform.relations.eligible_workers(task)[0];
        d.schedule_after(
            SimDuration::secs(5),
            PlatformEvent::AnswerSubmitted {
                worker,
                task,
                outputs: vec!["b".into()],
            },
        );
        d.pump().unwrap();
        assert_eq!(d.platform.now(), SimTime(15));
        assert_eq!(
            d.platform.project(proj).unwrap().engine.fact_count("out"),
            Ok(1)
        );
        // stale events are dropped, not fatal: answering the same task again
        d.schedule_after(
            SimDuration::secs(1),
            PlatformEvent::AnswerSubmitted {
                worker,
                task,
                outputs: vec!["c".into()],
            },
        );
        d.pump().unwrap();
        assert_eq!(d.platform.counters.get("events_dropped"), 1);
    }

    #[test]
    fn drain_due_yields_the_journal_incrementally() {
        // Driving the same schedule through per-step drain_due (which
        // resumes from the scan cache) or reading the whole stream at the
        // end must yield identical timed ops.
        let cfg = ScenarioConfig::default().with_crowd(10).with_seed(2);
        let mut streamed = Driver::new(&cfg);
        let mut reference = Driver::new(&cfg);
        let mut incremental = Vec::new();

        let script = |d: &mut Driver, step: usize| {
            let proj = ProjectId(1);
            if step == 0 {
                d.collab_project("p", SRC, &cfg, Scheme::Sequential, None)
                    .unwrap();
                d.schedule_after(
                    SimDuration::secs(10),
                    PlatformEvent::FactSeeded {
                        project: proj,
                        pred: "item".into(),
                        values: vec!["a".into()],
                    },
                );
            } else {
                let task = d.platform.pool.open_tasks(Some(proj))[0].id;
                let worker = d.platform.relations.eligible_workers(task)[0];
                d.schedule_after(
                    SimDuration::secs(5),
                    PlatformEvent::AnswerSubmitted {
                        worker,
                        task,
                        outputs: vec!["b".into()],
                    },
                );
            }
        };
        for step in 0..2 {
            script(&mut streamed, step);
            incremental.extend(streamed.drain_due().unwrap());
            script(&mut reference, step);
            reference.pump().unwrap();
        }
        // drain_due only yields what pump applied since the last call, so
        // the head of the stream (registrations + project setup, applied
        // outside pump) is read via the cursor API.
        let mut want = streamed.ops_since(0).unwrap();
        let head = want.len() - incremental.len();
        assert_eq!(incremental, want.split_off(head));
        // Both drivers journaled the identical stream.
        assert_eq!(
            streamed.ops_since(0).unwrap(),
            reference.ops_since(0).unwrap()
        );
    }

    #[test]
    fn infeasible_when_no_interest() {
        let cfg = ScenarioConfig {
            crowd: 3,
            min_team: 3,
            max_team: 3,
            ..Default::default()
        };
        let mut d = Driver::new(&cfg);
        let proj = d
            .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
            .unwrap();
        let task = d.platform.create_collab_task(proj, "x").unwrap();
        // nobody expressed interest
        let team = d.form_team(task, 2).unwrap();
        assert!(team.is_none());
    }
}
