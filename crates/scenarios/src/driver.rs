//! Common glue driving the platform with the simulated crowd: registering
//! a population, collecting interest, running assignment with deadline
//! handling, and tracking elapsed simulated time.

use crate::config::ScenarioConfig;
use crowd4u_assign::prelude::Team;
use crowd4u_collab::Scheme;
use crowd4u_core::prelude::*;
use crowd4u_crowd::population::{generate, Population, PopulationConfig};
use crowd4u_crowd::profile::WorkerId;
use crowd4u_forms::admin::DesiredFactors;
use crowd4u_sim::rng::SimRng;
use crowd4u_sim::time::{SimDuration, SimTime};

/// A platform + population pair with a shared clock.
pub struct Driver {
    pub platform: Crowd4U,
    pub crowd: Population,
    pub rng: SimRng,
    start: SimTime,
}

impl Driver {
    /// Build the world: a seeded crowd registered on a fresh platform.
    pub fn new(config: &ScenarioConfig) -> Driver {
        let mut rng = SimRng::seed_from(config.seed);
        let crowd = generate(
            &PopulationConfig {
                size: config.crowd,
                ..Default::default()
            },
            &mut rng,
        );
        let mut platform = Crowd4U::new();
        platform.controller.algorithm = config.algorithm;
        for agent in &crowd.agents {
            platform.register_worker(agent.profile.clone());
        }
        Driver {
            platform,
            crowd,
            rng,
            start: SimTime::ZERO,
        }
    }

    /// Desired factors matching the config (language-agnostic by default).
    pub fn factors(&self, config: &ScenarioConfig, skill: Option<&str>) -> DesiredFactors {
        DesiredFactors {
            skill_name: skill.map(str::to_owned),
            min_quality: if skill.is_some() { 0.4 } else { 0.0 },
            min_team: config.min_team,
            max_team: config.max_team,
            recruitment_secs: 1800,
            ..Default::default()
        }
    }

    /// Advance the shared clock by `d` and process platform deadlines.
    pub fn pass_time(&mut self, d: SimDuration) -> Result<(), PlatformError> {
        let t = self.platform.now() + d;
        self.platform.advance_to(t)
    }

    /// Simulated elapsed time since the driver was built.
    pub fn elapsed(&self) -> SimDuration {
        self.platform.now() - self.start
    }

    /// Step (3) of the workflow: every eligible agent looks at the task and
    /// may declare interest (per its behaviour model). Returns how many did.
    pub fn collect_interest(&mut self, task: TaskId) -> Result<usize, PlatformError> {
        let eligible = self.platform.relations.eligible_workers(task);
        let mut n = 0;
        let mut max_delay = SimDuration::ZERO;
        for w in eligible {
            let Some(agent) = self.crowd.agent_mut(w) else {
                continue;
            };
            let delay = agent.response_delay();
            if agent.declares_interest() {
                self.platform.express_interest(w, task)?;
                n += 1;
                if delay > max_delay {
                    max_delay = delay;
                }
            }
        }
        // Interest arrives in parallel: advance by the slowest responder.
        self.pass_time(max_delay)?;
        Ok(n)
    }

    /// Steps (4)+(5) with undertake simulation and deadline-driven retry:
    /// returns the team that actually started (task `InProgress`), or
    /// `None` when assignment remained infeasible after `max_rounds`.
    pub fn form_team(
        &mut self,
        task: TaskId,
        max_rounds: usize,
    ) -> Result<Option<Team>, PlatformError> {
        for _ in 0..max_rounds {
            // Pending members awaiting an undertake decision this round.
            let pending: Vec<WorkerId> = match self.platform.pool.get(task)?.state.clone() {
                TaskState::Open => match self.platform.run_assignment(task) {
                    Ok(t) => t.members,
                    Err(PlatformError::NoFeasibleTeam { .. }) => return Ok(None),
                    Err(e) => return Err(e),
                },
                TaskState::Suggested {
                    team, undertaken, ..
                } => team
                    .into_iter()
                    .filter(|m| !undertaken.contains(m))
                    .collect(),
                TaskState::InProgress { team } => return Ok(Some(self.assemble(&team))),
                TaskState::Completed { .. } | TaskState::Abandoned { .. } => return Ok(None),
            };
            // Each pending member independently decides to start.
            let mut max_delay = SimDuration::ZERO;
            for &m in &pending {
                let Some(agent) = self.crowd.agent_mut(m) else {
                    continue;
                };
                let delay = agent.response_delay();
                if delay > max_delay {
                    max_delay = delay;
                }
                if agent.commits() {
                    self.platform.undertake(m, task)?;
                }
            }
            self.pass_time(max_delay)?;
            if let TaskState::InProgress { team } = self.platform.pool.get(task)?.state.clone() {
                return Ok(Some(self.assemble(&team)));
            }
            // Someone held out: jump past the recruitment deadline so the
            // platform re-executes assignment (§2.2.1) and try again.
            self.pass_time(SimDuration::secs(1801))?;
        }
        Ok(None)
    }

    /// Rebuild a [`Team`] record (members + affinity) for a started team.
    fn assemble(&mut self, members: &[WorkerId]) -> Team {
        let affinity = self.team_affinity(members);
        Team {
            members: members.to_vec(),
            affinity,
            quality: 0.0,
            cost: 0.0,
        }
    }

    /// Mean pairwise affinity of a set of workers under the platform matrix.
    pub fn team_affinity(&mut self, members: &[WorkerId]) -> f64 {
        let m = self.platform.workers.affinity();
        crowd4u_crowd::affinity::group_affinity(m, members)
    }

    /// Register a collaborative project with scheme + factors in one call.
    pub fn collab_project(
        &mut self,
        name: &str,
        cylog: &str,
        config: &ScenarioConfig,
        scheme: Scheme,
        skill: Option<&str>,
    ) -> Result<ProjectId, PlatformError> {
        let f = self.factors(config, skill);
        self.platform.register_project(name, cylog, f, scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "rel item(x: str).\nopen label(x: str) -> (y: str).\nrel out(x: str, y: str).\nout(X, Y) :- item(X), label(X, Y).\n";

    #[test]
    fn driver_builds_world() {
        let cfg = ScenarioConfig::default().with_crowd(20);
        let d = Driver::new(&cfg);
        assert_eq!(d.platform.workers.len(), 20);
        assert_eq!(d.crowd.agents.len(), 20);
        assert_eq!(d.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn interest_collection_is_seeded() {
        let cfg = ScenarioConfig::default().with_crowd(30).with_seed(5);
        let mut d1 = Driver::new(&cfg);
        let mut d2 = Driver::new(&cfg);
        for d in [&mut d1, &mut d2] {
            let proj = d
                .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
                .unwrap();
            let task = d.platform.create_collab_task(proj, "x").unwrap();
            let n = d.collect_interest(task).unwrap();
            assert!(n > 0);
        }
        assert_eq!(d1.elapsed(), d2.elapsed());
        assert_eq!(
            d1.platform.counters.get("interest_expressed"),
            d2.platform.counters.get("interest_expressed")
        );
    }

    #[test]
    fn team_formation_end_to_end() {
        let cfg = ScenarioConfig::default().with_crowd(40).with_seed(9);
        let mut d = Driver::new(&cfg);
        let proj = d
            .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
            .unwrap();
        let task = d.platform.create_collab_task(proj, "x").unwrap();
        d.collect_interest(task).unwrap();
        let team = d.form_team(task, 5).unwrap();
        if let Some(team) = team {
            assert!(team.size() >= cfg.min_team);
            let aff = d.team_affinity(&team.members);
            assert!((0.0..=1.0).contains(&aff));
            // the task is in progress now
            assert_eq!(
                d.platform.pool.get(task).unwrap().state.label(),
                "in-progress"
            );
        }
    }

    #[test]
    fn infeasible_when_no_interest() {
        let cfg = ScenarioConfig {
            crowd: 3,
            min_team: 3,
            max_team: 3,
            ..Default::default()
        };
        let mut d = Driver::new(&cfg);
        let proj = d
            .collab_project("p", SRC, &cfg, Scheme::Sequential, None)
            .unwrap();
        let task = d.platform.create_collab_task(proj, "x").unwrap();
        // nobody expressed interest
        let team = d.form_team(task, 2).unwrap();
        assert!(team.is_none());
    }
}
