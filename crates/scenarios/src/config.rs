//! Shared scenario configuration and report types.

use crowd4u_collab::Scheme;
use crowd4u_core::controller::AlgorithmChoice;
use crowd4u_sim::time::SimDuration;
use std::fmt;

/// Knobs shared by the three demo scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed: same seed ⇒ identical run.
    pub seed: u64,
    /// Crowd size.
    pub crowd: usize,
    /// Work items (sentences / topics / regions).
    pub items: usize,
    /// Team-formation algorithm used by the assignment controller.
    pub algorithm: AlgorithmChoice,
    /// Upper critical mass for teams.
    pub max_team: usize,
    pub min_team: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            crowd: 60,
            items: 10,
            algorithm: AlgorithmChoice::LocalSearch,
            max_team: 5,
            min_team: 2,
        }
    }
}

impl ScenarioConfig {
    pub fn with_seed(mut self, seed: u64) -> ScenarioConfig {
        self.seed = seed;
        self
    }

    pub fn with_crowd(mut self, crowd: usize) -> ScenarioConfig {
        self.crowd = crowd;
        self
    }

    pub fn with_items(mut self, items: usize) -> ScenarioConfig {
        self.items = items;
        self
    }

    pub fn with_algorithm(mut self, algorithm: AlgorithmChoice) -> ScenarioConfig {
        self.algorithm = algorithm;
        self
    }
}

/// What a scenario run produced — the measurable face of paper §2.5.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub scheme: Scheme,
    /// Items fully processed (subtitled sentences / published reports /
    /// closed region reports).
    pub items_completed: usize,
    /// Items attempted.
    pub items_total: usize,
    /// Mean output quality over completed items (model of §"quality.rs").
    pub mean_quality: f64,
    /// Simulated wall-clock the scenario took.
    pub makespan: SimDuration,
    /// Micro-task answers submitted by the crowd.
    pub answers: u64,
    /// Teams suggested by the controller.
    pub teams_formed: u64,
    /// Deadline-driven assignment re-executions.
    pub reassignments: u64,
    /// Mean intra-team affinity of accepted teams.
    pub mean_team_affinity: f64,
    /// Game-aspect points awarded in total.
    pub points_awarded: i64,
}

impl ScenarioReport {
    pub fn completion_rate(&self) -> f64 {
        if self.items_total == 0 {
            0.0
        } else {
            self.items_completed as f64 / self.items_total as f64
        }
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheme={} completed={}/{} quality={:.3} makespan={} answers={} \
             teams={} reassignments={} affinity={:.3} points={}",
            self.scheme,
            self.items_completed,
            self.items_total,
            self.mean_quality,
            self.makespan,
            self.answers,
            self.teams_formed,
            self.reassignments,
            self.mean_team_affinity,
            self.points_awarded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = ScenarioConfig::default()
            .with_seed(7)
            .with_crowd(10)
            .with_items(3)
            .with_algorithm(AlgorithmChoice::Greedy);
        assert_eq!(c.seed, 7);
        assert_eq!(c.crowd, 10);
        assert_eq!(c.items, 3);
        assert_eq!(c.algorithm, AlgorithmChoice::Greedy);
    }

    #[test]
    fn completion_rate() {
        let mut r = ScenarioReport {
            scheme: Scheme::Sequential,
            items_completed: 3,
            items_total: 4,
            mean_quality: 0.8,
            makespan: SimDuration::minutes(5),
            answers: 9,
            teams_formed: 1,
            reassignments: 0,
            mean_team_affinity: 0.5,
            points_awarded: 12,
        };
        assert!((r.completion_rate() - 0.75).abs() < 1e-12);
        r.items_total = 0;
        assert_eq!(r.completion_rate(), 0.0);
        assert!(r.to_string().contains("scheme=sequential"));
    }
}
