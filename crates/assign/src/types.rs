//! Team-formation problem definition.
//!
//! Paper §2.2: "we model the set of workers as a complete graph with nodes
//! representing workers and edges labeled with pairwise affinities. A group
//! of workers is a clique in the graph whose size does not surpass the
//! critical mass imposed by a task. … Our task assignment problem reduces to
//! finding a clique that maximizes intra-affinity and satisfies quality and
//! cost limits." (\[9\] proves the optimization NP-complete.)

use crowd4u_crowd::affinity::{group_affinity, AffinityLookup};
use crowd4u_crowd::profile::WorkerId;
use std::fmt;

/// One worker as seen by the optimiser: id plus the scalar quality (skill on
/// the task's dimension) and cost extracted from the profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub id: WorkerId,
    /// Skill on the task's relevant dimension, in `[0,1]`.
    pub skill: f64,
    /// Cost of engaging this worker (0 for volunteers).
    pub cost: f64,
}

impl Candidate {
    pub fn new(id: WorkerId, skill: f64, cost: f64) -> Candidate {
        Candidate { id, skill, cost }
    }
}

/// Constraints a valid team must satisfy.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamConstraints {
    /// Minimum team size (≥ 1).
    pub min_size: usize,
    /// Upper critical mass: "a constraint on the group size beyond which the
    /// collaboration effectiveness diminishes" (§1).
    pub max_size: usize,
    /// Lower bound on the team's mean skill (quality limit).
    pub min_quality: f64,
    /// Upper bound on the team's total cost.
    pub max_cost: f64,
}

impl Default for TeamConstraints {
    fn default() -> Self {
        TeamConstraints {
            min_size: 2,
            max_size: 5,
            min_quality: 0.0,
            max_cost: f64::INFINITY,
        }
    }
}

impl TeamConstraints {
    pub fn sized(min_size: usize, max_size: usize) -> TeamConstraints {
        TeamConstraints {
            min_size,
            max_size,
            ..Default::default()
        }
    }

    pub fn with_quality(mut self, q: f64) -> TeamConstraints {
        self.min_quality = q;
        self
    }

    pub fn with_budget(mut self, c: f64) -> TeamConstraints {
        self.max_cost = c;
        self
    }

    /// Is a concrete team feasible under these constraints?
    pub fn feasible(&self, team: &[&Candidate]) -> bool {
        let n = team.len();
        if n < self.min_size || n > self.max_size || n == 0 {
            return false;
        }
        let quality = team.iter().map(|c| c.skill).sum::<f64>() / n as f64;
        let cost = team.iter().map(|c| c.cost).sum::<f64>();
        quality + 1e-12 >= self.min_quality && cost <= self.max_cost + 1e-12
    }
}

/// A formed team with its objective and constraint values.
#[derive(Debug, Clone, PartialEq)]
pub struct Team {
    pub members: Vec<WorkerId>,
    /// Mean pairwise affinity (the objective).
    pub affinity: f64,
    /// Mean member skill.
    pub quality: f64,
    /// Total cost.
    pub cost: f64,
}

impl Team {
    /// Build a team record from members, computing objective/limits.
    pub fn assemble(members: Vec<WorkerId>, cands: &[Candidate], aff: &dyn AffinityLookup) -> Team {
        let n = members.len().max(1);
        let quality = members
            .iter()
            .map(|m| cands.iter().find(|c| c.id == *m).map_or(0.0, |c| c.skill))
            .sum::<f64>()
            / n as f64;
        let cost = members
            .iter()
            .map(|m| cands.iter().find(|c| c.id == *m).map_or(0.0, |c| c.cost))
            .sum::<f64>();
        let affinity = group_affinity(aff, &members);
        Team {
            members,
            affinity,
            quality,
            cost,
        }
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }
}

impl fmt::Display for Team {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "team[{}] affinity={:.3} quality={:.3} cost={:.1}",
            self.members
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.affinity,
            self.quality,
            self.cost
        )
    }
}

/// Common interface of all team-formation algorithms.
pub trait TeamFormation {
    /// Algorithm name for reports and benches.
    fn name(&self) -> &'static str;

    /// Form the best team the algorithm can find, or `None` when no feasible
    /// team exists (the platform then "suggests to the requester to update
    /// her input", §2.2.1).
    fn form(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team>;
}

/// Validate a team against constraints (shared test/diagnostic helper).
pub fn validate_team(team: &Team, cands: &[Candidate], constraints: &TeamConstraints) -> bool {
    let members: Vec<&Candidate> = team
        .members
        .iter()
        .filter_map(|m| cands.iter().find(|c| c.id == *m))
        .collect();
    if members.len() != team.members.len() {
        return false; // member not in candidate pool
    }
    // no duplicate members
    for (i, m) in team.members.iter().enumerate() {
        if team.members[..i].contains(m) {
            return false;
        }
    }
    constraints.feasible(&members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::affinity::AffinityMatrix;

    fn cands(n: u64) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate::new(WorkerId(i), 0.5 + 0.05 * i as f64, 1.0))
            .collect()
    }

    #[test]
    fn constraints_feasibility() {
        let cs = cands(4);
        let team: Vec<&Candidate> = cs.iter().collect();
        let c = TeamConstraints::sized(2, 5);
        assert!(c.feasible(&team));
        assert!(!TeamConstraints::sized(5, 9).feasible(&team)); // too small
        assert!(!TeamConstraints::sized(1, 3).feasible(&team)); // too big
        assert!(!c.clone().with_quality(0.9).feasible(&team)); // mean ≈ 0.575
        assert!(c.clone().with_quality(0.5).feasible(&team));
        assert!(!c.clone().with_budget(3.0).feasible(&team)); // cost 4
        assert!(c.with_budget(4.0).feasible(&team));
        assert!(!TeamConstraints::default().feasible(&[]));
    }

    #[test]
    fn assemble_computes_metrics() {
        let cs = cands(3);
        let mut m = AffinityMatrix::new(cs.iter().map(|c| c.id).collect());
        m.set(WorkerId(0), WorkerId(1), 0.8);
        m.set(WorkerId(0), WorkerId(2), 0.2);
        m.set(WorkerId(1), WorkerId(2), 0.5);
        let t = Team::assemble(vec![WorkerId(0), WorkerId(1), WorkerId(2)], &cs, &m);
        assert!((t.affinity - 0.5).abs() < 1e-12);
        assert!((t.quality - 0.55).abs() < 1e-12);
        assert!((t.cost - 3.0).abs() < 1e-12);
        assert_eq!(t.size(), 3);
        assert!(t.to_string().contains("affinity=0.500"));
    }

    #[test]
    fn validate_rejects_bad_teams() {
        let cs = cands(3);
        let m = AffinityMatrix::new(cs.iter().map(|c| c.id).collect());
        let constraints = TeamConstraints::sized(2, 3);
        let good = Team::assemble(vec![WorkerId(0), WorkerId(1)], &cs, &m);
        assert!(validate_team(&good, &cs, &constraints));
        // duplicate member
        let dup = Team::assemble(vec![WorkerId(0), WorkerId(0)], &cs, &m);
        assert!(!validate_team(&dup, &cs, &constraints));
        // unknown member
        let unknown = Team::assemble(vec![WorkerId(0), WorkerId(99)], &cs, &m);
        assert!(!validate_team(&unknown, &cs, &constraints));
    }
}
