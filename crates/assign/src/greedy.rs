//! Greedy team formation with multi-seed restarts, plus local-search
//! refinement by member swaps — the "efficient in practice" approximations
//! of Rahman et al. \[9\] that Crowd4U adapts per collaboration scheme.

use crate::types::{Candidate, Team, TeamConstraints, TeamFormation};
use crowd4u_crowd::affinity::AffinityLookup;
use crowd4u_crowd::profile::WorkerId;

/// Greedy expansion: for each seed worker, repeatedly add the candidate with
/// the highest marginal affinity while keeping cost feasible; keep the best
/// feasible team over all seeds.
#[derive(Debug, Clone, Default)]
pub struct GreedyAff {
    /// Limit the number of seeds tried (0 = all workers). Large pools use
    /// the highest-skill workers as seeds.
    pub max_seeds: usize,
}

impl GreedyAff {
    pub fn with_seed_cap(max_seeds: usize) -> GreedyAff {
        GreedyAff { max_seeds }
    }
}

fn pair_count(k: usize) -> f64 {
    (k * k.saturating_sub(1) / 2) as f64
}

/// Grow a team greedily from one seed; returns the best feasible prefix.
fn grow_from_seed(
    seed: usize,
    cands: &[Candidate],
    aff: &dyn AffinityLookup,
    constraints: &TeamConstraints,
) -> Option<(f64, Vec<WorkerId>)> {
    let mut in_team = vec![false; cands.len()];
    in_team[seed] = true;
    let mut team = vec![seed];
    let mut pair_sum = 0.0;
    let mut skill_sum = cands[seed].skill;
    let mut cost_sum = cands[seed].cost;
    if cost_sum > constraints.max_cost {
        return None;
    }
    let mut best: Option<(f64, Vec<WorkerId>)> = None;
    let consider = |team: &[usize],
                    pair_sum: f64,
                    skill_sum: f64,
                    cost_sum: f64,
                    best: &mut Option<(f64, Vec<WorkerId>)>| {
        let n = team.len();
        if n < constraints.min_size {
            return;
        }
        if skill_sum / n as f64 + 1e-12 < constraints.min_quality {
            return;
        }
        if cost_sum > constraints.max_cost + 1e-12 {
            return;
        }
        let mean = if n < 2 { 0.0 } else { pair_sum / pair_count(n) };
        if best.as_ref().is_none_or(|(b, _)| mean > *b) {
            *best = Some((mean, team.iter().map(|&i| cands[i].id).collect()));
        }
    };
    consider(&team, pair_sum, skill_sum, cost_sum, &mut best);

    while team.len() < constraints.max_size {
        // Pick the addition that maximises (greedily) the new mean affinity,
        // breaking ties toward higher skill to help the quality constraint.
        let mut pick: Option<(usize, f64)> = None;
        for (i, c) in cands.iter().enumerate() {
            if in_team[i] || cost_sum + c.cost > constraints.max_cost + 1e-12 {
                continue;
            }
            let marginal: f64 = team.iter().map(|&m| aff.affinity(cands[m].id, c.id)).sum();
            let new_mean = (pair_sum + marginal) / pair_count(team.len() + 1);
            let score = new_mean + 1e-9 * c.skill;
            if pick.as_ref().is_none_or(|(_, s)| score > *s) {
                pick = Some((i, score));
            }
        }
        let Some((i, _)) = pick else { break };
        let marginal: f64 = team
            .iter()
            .map(|&m| aff.affinity(cands[m].id, cands[i].id))
            .sum();
        in_team[i] = true;
        team.push(i);
        pair_sum += marginal;
        skill_sum += cands[i].skill;
        cost_sum += cands[i].cost;
        consider(&team, pair_sum, skill_sum, cost_sum, &mut best);
    }
    best
}

impl TeamFormation for GreedyAff {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn form(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team> {
        if cands.is_empty() || constraints.min_size > constraints.max_size {
            return None;
        }
        // Seed order: by descending skill (helps meet quality constraints).
        let mut seeds: Vec<usize> = (0..cands.len()).collect();
        seeds.sort_by(|&a, &b| cands[b].skill.total_cmp(&cands[a].skill));
        if self.max_seeds > 0 {
            seeds.truncate(self.max_seeds);
        }
        let mut best: Option<(f64, Vec<WorkerId>)> = None;
        for s in seeds {
            if let Some((mean, members)) = grow_from_seed(s, cands, aff, constraints) {
                if best.as_ref().is_none_or(|(b, _)| mean > *b) {
                    best = Some((mean, members));
                }
            }
        }
        best.map(|(_, members)| Team::assemble(members, cands, aff))
    }
}

/// Local search: start from the greedy solution and improve it by swapping
/// one member for one outsider while feasible, until a local optimum.
#[derive(Debug, Clone)]
pub struct LocalSearch {
    pub max_iterations: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            max_iterations: 1000,
        }
    }
}

impl TeamFormation for LocalSearch {
    fn name(&self) -> &'static str {
        "local-search"
    }

    fn form(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team> {
        let start = GreedyAff::default().form(cands, aff, constraints)?;
        let mut members = start.members;
        let mut current = start.affinity;
        for _ in 0..self.max_iterations {
            let mut improved = false;
            'outer: for mi in 0..members.len() {
                for c in cands {
                    if members.contains(&c.id) {
                        continue;
                    }
                    let mut trial = members.clone();
                    trial[mi] = c.id;
                    let t = Team::assemble(trial, cands, aff);
                    let feasible = t.quality + 1e-12 >= constraints.min_quality
                        && t.cost <= constraints.max_cost + 1e-12;
                    if feasible && t.affinity > current + 1e-12 {
                        members = t.members;
                        current = t.affinity;
                        improved = true;
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        Some(Team::assemble(members, cands, aff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactBB;
    use crate::types::validate_team;
    use crowd4u_crowd::affinity::AffinityMatrix;

    fn random_instance(n: u64, seed: u64) -> (Vec<Candidate>, AffinityMatrix) {
        let mut rng = crowd4u_sim::rng::SimRng::seed_from(seed);
        let cands: Vec<Candidate> = (0..n)
            .map(|i| Candidate::new(WorkerId(i), rng.unit(), rng.range_f64(0.0, 3.0)))
            .collect();
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(WorkerId(i), WorkerId(j), rng.unit());
            }
        }
        (cands, m)
    }

    #[test]
    fn greedy_finds_feasible_teams() {
        for seed in 0..10 {
            let (cands, m) = random_instance(20, seed);
            let constraints = TeamConstraints::sized(3, 6)
                .with_quality(0.3)
                .with_budget(10.0);
            if let Some(t) = GreedyAff::default().form(&cands, &m, &constraints) {
                assert!(validate_team(&t, &cands, &constraints), "seed {seed}: {t}");
            }
        }
    }

    #[test]
    fn greedy_never_beats_exact() {
        for seed in 0..8 {
            let (cands, m) = random_instance(10, seed);
            let constraints = TeamConstraints::sized(2, 4);
            let g = GreedyAff::default().form(&cands, &m, &constraints).unwrap();
            let e = ExactBB::default().form(&cands, &m, &constraints).unwrap();
            assert!(
                e.affinity + 1e-9 >= g.affinity,
                "seed {seed}: exact {} < greedy {}",
                e.affinity,
                g.affinity
            );
        }
    }

    #[test]
    fn local_search_at_least_greedy() {
        for seed in 0..8 {
            let (cands, m) = random_instance(25, seed);
            let constraints = TeamConstraints::sized(3, 5);
            let g = GreedyAff::default().form(&cands, &m, &constraints).unwrap();
            let l = LocalSearch::default()
                .form(&cands, &m, &constraints)
                .unwrap();
            assert!(
                l.affinity + 1e-9 >= g.affinity,
                "seed {seed}: local {} < greedy {}",
                l.affinity,
                g.affinity
            );
            assert!(validate_team(&l, &cands, &constraints));
        }
    }

    #[test]
    fn local_search_never_beats_exact_on_small() {
        for seed in 0..5 {
            let (cands, m) = random_instance(9, seed);
            let constraints = TeamConstraints::sized(2, 4);
            let l = LocalSearch::default()
                .form(&cands, &m, &constraints)
                .unwrap();
            let e = ExactBB::default().form(&cands, &m, &constraints).unwrap();
            assert!(e.affinity + 1e-9 >= l.affinity, "seed {seed}");
        }
    }

    #[test]
    fn greedy_handles_infeasible() {
        let (cands, m) = random_instance(5, 1);
        assert!(GreedyAff::default()
            .form(&cands, &m, &TeamConstraints::sized(2, 4).with_quality(2.0))
            .is_none());
        assert!(GreedyAff::default()
            .form(&[], &m, &TeamConstraints::default())
            .is_none());
        assert!(GreedyAff::default()
            .form(&cands, &m, &TeamConstraints::sized(3, 2))
            .is_none());
        assert!(LocalSearch::default()
            .form(&cands, &m, &TeamConstraints::sized(2, 4).with_quality(2.0))
            .is_none());
    }

    #[test]
    fn greedy_seed_cap_reduces_work_but_stays_feasible() {
        let (cands, m) = random_instance(40, 3);
        let constraints = TeamConstraints::sized(3, 6).with_quality(0.2);
        let capped = GreedyAff::with_seed_cap(4)
            .form(&cands, &m, &constraints)
            .unwrap();
        let full = GreedyAff::default().form(&cands, &m, &constraints).unwrap();
        assert!(validate_team(&capped, &cands, &constraints));
        assert!(full.affinity + 1e-9 >= capped.affinity);
    }

    #[test]
    fn quality_constraint_steers_selection() {
        // High-affinity pair is low-skill; greedy must still satisfy quality.
        let cands = vec![
            Candidate::new(WorkerId(0), 0.1, 0.0),
            Candidate::new(WorkerId(1), 0.1, 0.0),
            Candidate::new(WorkerId(2), 0.9, 0.0),
            Candidate::new(WorkerId(3), 0.9, 0.0),
        ];
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        m.set(WorkerId(0), WorkerId(1), 1.0);
        m.set(WorkerId(2), WorkerId(3), 0.2);
        let constraints = TeamConstraints::sized(2, 2).with_quality(0.8);
        let t = GreedyAff::default().form(&cands, &m, &constraints).unwrap();
        let mut members = t.members.clone();
        members.sort();
        assert_eq!(members, vec![WorkerId(2), WorkerId(3)]);
    }

    #[test]
    fn names() {
        assert_eq!(GreedyAff::default().name(), "greedy");
        assert_eq!(LocalSearch::default().name(), "local-search");
    }
}
