//! # crowd4u-assign — affinity-aware team formation
//!
//! Implements the task assignment component of Crowd4U (paper §2.2): given
//! a pool of eligible, interested workers, find "a clique that maximizes
//! intra-affinity and satisfies quality and cost limits", where the clique
//! size is bounded by the task's *upper critical mass*. The underlying
//! optimisation is NP-complete (Rahman et al., ICDM 2015 — the paper's
//! reference \[9\]), so alongside the exact branch-and-bound solver this
//! crate ships the practical approximations the platform actually runs:
//!
//! | algorithm | module | use |
//! |-----------|--------|-----|
//! | `ExactBB` | [`exact`] | optimal; viable to ~20 workers (experiment E7) |
//! | `GreedyAff` | [`greedy`] | multi-seed greedy expansion |
//! | `LocalSearch` | [`greedy`] | greedy + swap refinement |
//! | `GrpSplit` | [`grpsplit`] | decomposable parallel tasks (one group per sub-task) |
//! | `RandomTeam` | [`baseline`] | the baseline floor |
//!
//! All implement [`types::TeamFormation`] and are interchangeable inside the
//! platform's assignment controller; per §2.2 "we adapt the algorithms
//! depending on the type of collaboration scheme" — sequential tasks use a
//! single group, parallel tasks use `GrpSplit`.

pub mod baseline;
pub mod exact;
pub mod greedy;
pub mod grpsplit;
pub mod load;
pub mod types;

pub mod prelude {
    pub use crate::baseline::RandomTeam;
    pub use crate::exact::ExactBB;
    pub use crate::greedy::{GreedyAff, LocalSearch};
    pub use crate::grpsplit::{random_split, GrpSplit, SplitAssignment};
    pub use crate::load::{form_least_loaded, LeastLoaded};
    pub use crate::types::{validate_team, Candidate, Team, TeamConstraints, TeamFormation};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use crowd4u_crowd::affinity::AffinityMatrix;
    use crowd4u_crowd::profile::WorkerId;
    use proptest::prelude::*;

    fn build(skills: &[f64], affs: &[f64]) -> (Vec<Candidate>, AffinityMatrix) {
        let n = skills.len();
        let cands: Vec<Candidate> = skills
            .iter()
            .enumerate()
            .map(|(i, &s)| Candidate::new(WorkerId(i as u64), s, 0.0))
            .collect();
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(WorkerId(i as u64), WorkerId(j as u64), affs[k % affs.len()]);
                k += 1;
            }
        }
        (cands, m)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// On small instances the exact solver is optimal: no algorithm can
        /// beat it, and it matches brute force via the unpruned variant.
        #[test]
        fn exact_dominates(
            skills in proptest::collection::vec(0.0f64..1.0, 5..9),
            affs in proptest::collection::vec(0.0f64..1.0, 8..24),
        ) {
            let (cands, m) = build(&skills, &affs);
            let constraints = TeamConstraints::sized(2, 4);
            let e = ExactBB::default().form(&cands, &m, &constraints).unwrap();
            let brute = ExactBB::without_pruning().form(&cands, &m, &constraints).unwrap();
            prop_assert!((e.affinity - brute.affinity).abs() < 1e-9);
            for alg in [&GreedyAff::default() as &dyn TeamFormation,
                        &LocalSearch::default()] {
                if let Some(t) = alg.form(&cands, &m, &constraints) {
                    prop_assert!(e.affinity + 1e-9 >= t.affinity,
                        "{} beat exact: {} > {}", alg.name(), t.affinity, e.affinity);
                    prop_assert!(validate_team(&t, &cands, &constraints));
                }
            }
        }

        /// Every algorithm's output satisfies the constraints it was given.
        #[test]
        fn teams_always_valid(
            skills in proptest::collection::vec(0.0f64..1.0, 6..16),
            affs in proptest::collection::vec(0.0f64..1.0, 6..30),
            min_q in 0.0f64..0.6,
        ) {
            let (cands, m) = build(&skills, &affs);
            let constraints = TeamConstraints::sized(2, 5).with_quality(min_q);
            for alg in [&ExactBB::default() as &dyn TeamFormation,
                        &GreedyAff::default(),
                        &LocalSearch::default(),
                        &RandomTeam::new(1)] {
                if let Some(t) = alg.form(&cands, &m, &constraints) {
                    prop_assert!(validate_team(&t, &cands, &constraints),
                        "{} produced invalid team {t}", alg.name());
                }
            }
        }

        /// Grp&Split groups are disjoint and within size bounds.
        #[test]
        fn grpsplit_partition_valid(
            skills in proptest::collection::vec(0.3f64..1.0, 8..20),
            affs in proptest::collection::vec(0.0f64..1.0, 10..40),
        ) {
            let (cands, m) = build(&skills, &affs);
            let constraints = TeamConstraints::sized(2, 4);
            if let Some(s) = GrpSplit::new(2).split(&cands, &m, &constraints) {
                let mut seen = std::collections::HashSet::new();
                for g in &s.groups {
                    prop_assert!(g.size() >= 2 && g.size() <= 4);
                    for w in &g.members {
                        prop_assert!(seen.insert(*w), "worker {w} in two groups");
                    }
                }
            }
        }
    }
}
