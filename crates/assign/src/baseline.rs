//! Random-team baseline: the floor every real algorithm must beat.

use crate::types::{Candidate, Team, TeamConstraints, TeamFormation};
use crowd4u_crowd::affinity::AffinityLookup;
use crowd4u_crowd::profile::WorkerId;
use crowd4u_sim::rng::SimRng;
use std::cell::RefCell;

/// Uniformly random feasible team (best of `attempts` samples).
#[derive(Debug)]
pub struct RandomTeam {
    pub attempts: usize,
    rng: RefCell<SimRng>,
}

impl RandomTeam {
    pub fn new(seed: u64) -> RandomTeam {
        RandomTeam {
            attempts: 32,
            rng: RefCell::new(SimRng::seed_from(seed)),
        }
    }

    pub fn with_attempts(seed: u64, attempts: usize) -> RandomTeam {
        RandomTeam {
            attempts,
            rng: RefCell::new(SimRng::seed_from(seed)),
        }
    }
}

impl TeamFormation for RandomTeam {
    fn name(&self) -> &'static str {
        "random"
    }

    fn form(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team> {
        if cands.len() < constraints.min_size || constraints.min_size > constraints.max_size {
            return None;
        }
        let mut rng = self.rng.borrow_mut();
        let mut best: Option<Team> = None;
        for _ in 0..self.attempts {
            let size = if constraints.min_size == constraints.max_size {
                constraints.min_size
            } else {
                constraints.min_size
                    + rng.index(constraints.max_size.min(cands.len()) - constraints.min_size + 1)
            };
            let size = size.min(cands.len());
            let members: Vec<WorkerId> = rng
                .sample_indices(cands.len(), size)
                .into_iter()
                .map(|i| cands[i].id)
                .collect();
            let t = Team::assemble(members, cands, aff);
            let feasible = t.size() >= constraints.min_size
                && t.size() <= constraints.max_size
                && t.quality + 1e-12 >= constraints.min_quality
                && t.cost <= constraints.max_cost + 1e-12;
            if feasible && best.as_ref().is_none_or(|b| t.affinity > b.affinity) {
                best = Some(t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactBB;
    use crate::types::validate_team;
    use crowd4u_crowd::affinity::AffinityMatrix;

    fn instance(n: u64, seed: u64) -> (Vec<Candidate>, AffinityMatrix) {
        let mut rng = SimRng::seed_from(seed);
        let cands: Vec<Candidate> = (0..n)
            .map(|i| Candidate::new(WorkerId(i), rng.unit(), 0.0))
            .collect();
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        for i in 0..n {
            for j in (i + 1)..n {
                m.set(WorkerId(i), WorkerId(j), rng.unit());
            }
        }
        (cands, m)
    }

    #[test]
    fn random_teams_are_feasible() {
        let (cands, m) = instance(15, 2);
        let constraints = TeamConstraints::sized(3, 6).with_quality(0.2);
        let alg = RandomTeam::new(7);
        for _ in 0..10 {
            if let Some(t) = alg.form(&cands, &m, &constraints) {
                assert!(validate_team(&t, &cands, &constraints));
            }
        }
    }

    #[test]
    fn random_never_beats_exact() {
        let (cands, m) = instance(10, 3);
        let constraints = TeamConstraints::sized(2, 4);
        let e = ExactBB::default().form(&cands, &m, &constraints).unwrap();
        let alg = RandomTeam::new(9);
        for _ in 0..10 {
            let r = alg.form(&cands, &m, &constraints).unwrap();
            assert!(e.affinity + 1e-9 >= r.affinity);
        }
    }

    #[test]
    fn random_handles_edge_cases() {
        let (cands, m) = instance(3, 1);
        assert!(RandomTeam::new(1)
            .form(&cands, &m, &TeamConstraints::sized(5, 8))
            .is_none());
        assert!(RandomTeam::new(1)
            .form(&cands, &m, &TeamConstraints::sized(3, 2))
            .is_none());
        assert!(RandomTeam::new(1)
            .form(&[], &m, &TeamConstraints::sized(1, 2))
            .is_none());
        // infeasible quality: all attempts rejected
        assert!(RandomTeam::new(1)
            .form(&cands, &m, &TeamConstraints::sized(2, 3).with_quality(1.5))
            .is_none());
        assert_eq!(RandomTeam::new(1).name(), "random");
    }

    #[test]
    fn fixed_size_constraint_respected() {
        let (cands, m) = instance(12, 4);
        let t = RandomTeam::new(5)
            .form(&cands, &m, &TeamConstraints::sized(4, 4))
            .unwrap();
        assert_eq!(t.size(), 4);
    }

    #[test]
    fn more_attempts_do_not_hurt() {
        let (cands, m) = instance(14, 6);
        let constraints = TeamConstraints::sized(3, 5);
        // Same seed: the 64-attempt best is at least the 1-attempt best.
        let few = RandomTeam::with_attempts(42, 1)
            .form(&cands, &m, &constraints)
            .map(|t| t.affinity)
            .unwrap_or(0.0);
        let many = RandomTeam::with_attempts(42, 64)
            .form(&cands, &m, &constraints)
            .map(|t| t.affinity)
            .unwrap();
        assert!(many + 1e-12 >= few);
    }
}
