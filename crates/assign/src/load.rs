//! Load-aware team formation for a **shared crowd**.
//!
//! When one population serves several applications at once (the
//! marketplace mode of `crowd4u-scenarios`), a worker's availability is no
//! longer a per-project fact: someone already suggested onto two teams in
//! other applications is a worse pick than an equally-skilled idle worker,
//! even if both pass the local eligibility screen. [`LeastLoaded`] wraps
//! any base [`TeamFormation`] with exactly that preference — it weighs
//! each candidate's *total* active load across all applications (the
//! platform's `assignment_loads()` aggregate) and proposes the feasible
//! team whose busiest member is least busy.
//!
//! The wrapper lives here, **outside** the platform's deadline/assignment
//! apply path, on purpose: inside a sharded runtime each owner shard sees
//! only its own projects' tasks, so a load-aware decision made during
//! event application would read different loads at different shard counts
//! and break the byte-identical-journal contract. Cross-scenario load is
//! a *front-end* concern — compute loads over the authoritative runtime,
//! form the team here, then submit the resulting interest/assignment
//! events like any other requester action.

use crate::types::{Candidate, Team, TeamConstraints, TeamFormation};
use crowd4u_crowd::affinity::AffinityLookup;
use crowd4u_crowd::profile::WorkerId;
use std::collections::BTreeMap;

/// Form a team preferring the least-loaded workers: try the base
/// algorithm on the candidates whose cross-application load is at most
/// each ascending load level, and return the first feasible team. The
/// last level admits every candidate, so the wrapper is never *less*
/// feasible than the base algorithm — and when all loads are equal it
/// returns exactly the base algorithm's team.
pub fn form_least_loaded(
    base: &dyn TeamFormation,
    cands: &[Candidate],
    aff: &dyn AffinityLookup,
    constraints: &TeamConstraints,
    loads: &BTreeMap<WorkerId, u64>,
) -> Option<Team> {
    let load_of = |c: &Candidate| loads.get(&c.id).copied().unwrap_or(0);
    let mut levels: Vec<u64> = cands.iter().map(&load_of).collect();
    levels.sort_unstable();
    levels.dedup();
    for level in levels {
        let subset: Vec<Candidate> = cands
            .iter()
            .filter(|c| load_of(c) <= level)
            .cloned()
            .collect();
        if subset.len() < constraints.min_size {
            continue;
        }
        if let Some(team) = base.form(&subset, aff, constraints) {
            return Some(team);
        }
    }
    None
}

/// [`form_least_loaded`] as a plug-in [`TeamFormation`], carrying its
/// load table by reference.
pub struct LeastLoaded<'a> {
    pub base: &'a dyn TeamFormation,
    /// Active suggested/in-progress team memberships per worker, across
    /// every application of the shared runtime. Absent workers are idle.
    pub loads: &'a BTreeMap<WorkerId, u64>,
}

impl TeamFormation for LeastLoaded<'_> {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn form(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team> {
        form_least_loaded(self.base, cands, aff, constraints, self.loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::LocalSearch;
    use crowd4u_crowd::affinity::AffinityMatrix;

    fn setup(n: u64) -> (Vec<Candidate>, AffinityMatrix) {
        let cands: Vec<Candidate> = (1..=n)
            .map(|i| Candidate::new(WorkerId(i), 0.9, 0.0))
            .collect();
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        for i in 1..=n {
            for j in (i + 1)..=n {
                m.set(WorkerId(i), WorkerId(j), 0.5);
            }
        }
        (cands, m)
    }

    #[test]
    fn idle_workers_beat_busy_ones() {
        let (cands, m) = setup(6);
        let constraints = TeamConstraints::sized(2, 3);
        // Workers 1–3 are on two teams elsewhere; 4–6 are idle.
        let loads = BTreeMap::from([(WorkerId(1), 2), (WorkerId(2), 2), (WorkerId(3), 2)]);
        let base = LocalSearch::default();
        let team = form_least_loaded(&base, &cands, &m, &constraints, &loads).unwrap();
        for w in &team.members {
            assert_eq!(loads.get(w), None, "busy worker {w} picked over idle");
        }
    }

    #[test]
    fn equal_loads_reduce_to_the_base_algorithm() {
        let (cands, m) = setup(5);
        let constraints = TeamConstraints::sized(2, 4);
        let base = LocalSearch::default();
        let want = base.form(&cands, &m, &constraints).unwrap();
        let team = form_least_loaded(&base, &cands, &m, &constraints, &BTreeMap::new()).unwrap();
        assert_eq!(team.members, want.members);
        let wrapper = LeastLoaded {
            base: &base,
            loads: &BTreeMap::new(),
        };
        let via_trait = wrapper.form(&cands, &m, &constraints).unwrap();
        assert_eq!(via_trait.members, want.members);
    }

    #[test]
    fn falls_back_to_busy_workers_when_idle_ones_cannot_form_a_team() {
        let (cands, m) = setup(4);
        let constraints = TeamConstraints::sized(3, 4);
        // Only one idle worker — a 3-person team must include busy ones,
        // and the wrapper must still find it (never less feasible than
        // the base algorithm).
        let loads = BTreeMap::from([(WorkerId(1), 1), (WorkerId(2), 1), (WorkerId(3), 1)]);
        let base = LocalSearch::default();
        let team = form_least_loaded(&base, &cands, &m, &constraints, &loads).unwrap();
        assert!(team.members.len() >= 3);
    }
}
