//! Grp&Split: team formation for decomposable parallel tasks.
//!
//! Paper §2.2: "For parallel tasks that can naturally be decomposed, we
//! decompose it into a set of independent sub-tasks (such as, independent
//! sections of a document to draft together). We then identify groups for
//! each sub-task who edit simultaneously on their allocated section, with
//! collaboration across the sub-groups … to effectively merge the sections."
//!
//! The algorithm forms `g` groups (one per sub-task): workers are taken in
//! descending total-affinity order and each joins the non-full group where
//! its marginal affinity is highest; a balancing pass then fills groups that
//! missed their minimum size.

use crate::types::{Candidate, Team, TeamConstraints};
use crowd4u_crowd::affinity::AffinityLookup;
use crowd4u_crowd::profile::WorkerId;

/// Result of a Grp&Split run: one team per sub-task plus the cross-group
/// "merge" affinity (how well adjacent groups can coordinate the merge).
#[derive(Debug, Clone)]
pub struct SplitAssignment {
    pub groups: Vec<Team>,
    /// Mean affinity between consecutive groups' members (merge channel).
    pub merge_affinity: f64,
}

impl SplitAssignment {
    /// Mean intra-group affinity across groups.
    pub fn mean_group_affinity(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().map(|g| g.affinity).sum::<f64>() / self.groups.len() as f64
    }

    pub fn total_workers(&self) -> usize {
        self.groups.iter().map(Team::size).sum()
    }
}

/// Grp&Split solver for `n_groups` parallel sub-tasks.
#[derive(Debug, Clone)]
pub struct GrpSplit {
    pub n_groups: usize,
}

impl GrpSplit {
    pub fn new(n_groups: usize) -> GrpSplit {
        GrpSplit { n_groups }
    }

    /// Partition candidates into per-sub-task groups. Returns `None` when
    /// the pool cannot populate every group at `min_size` within budget.
    pub fn split(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<SplitAssignment> {
        let g = self.n_groups;
        if g == 0 || cands.len() < g * constraints.min_size {
            return None;
        }
        // Order workers by total affinity to everyone (strong connectors
        // first, so early placements anchor coherent groups).
        let mut order: Vec<usize> = (0..cands.len()).collect();
        let total_aff = |i: usize| -> f64 {
            cands
                .iter()
                .map(|c| aff.affinity(cands[i].id, c.id))
                .sum::<f64>()
        };
        order.sort_by(|&a, &b| total_aff(b).total_cmp(&total_aff(a)));

        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); g];
        let mut group_cost = vec![0.0; g];
        for &i in &order {
            // Highest marginal affinity among groups with room and budget.
            let mut best: Option<(usize, f64)> = None;
            for (gi, grp) in groups.iter().enumerate() {
                if grp.len() >= constraints.max_size {
                    continue;
                }
                if group_cost[gi] + cands[i].cost > constraints.max_cost + 1e-12 {
                    continue;
                }
                let marginal: f64 = grp
                    .iter()
                    .map(|&m| aff.affinity(cands[m].id, cands[i].id))
                    .sum();
                // Prefer under-filled groups on ties (encourages balance).
                let score = marginal - 0.001 * grp.len() as f64;
                if best.as_ref().is_none_or(|(_, s)| score > *s) {
                    best = Some((gi, score));
                }
            }
            if let Some((gi, _)) = best {
                groups[gi].push(i);
                group_cost[gi] += cands[i].cost;
            }
        }

        // Every group must reach min_size and quality.
        for grp in &groups {
            if grp.len() < constraints.min_size {
                return None;
            }
            let q = grp.iter().map(|&i| cands[i].skill).sum::<f64>() / grp.len() as f64;
            if q + 1e-12 < constraints.min_quality {
                return None;
            }
        }

        let teams: Vec<Team> = groups
            .iter()
            .map(|grp| {
                Team::assemble(
                    grp.iter().map(|&i| cands[i].id).collect::<Vec<WorkerId>>(),
                    cands,
                    aff,
                )
            })
            .collect();

        // Merge affinity: mean pairwise affinity between consecutive groups.
        let mut merge = 0.0;
        let mut pairs = 0usize;
        for w in teams.windows(2) {
            for a in &w[0].members {
                for b in &w[1].members {
                    merge += aff.affinity(*a, *b);
                    pairs += 1;
                }
            }
        }
        let merge_affinity = if pairs == 0 {
            0.0
        } else {
            merge / pairs as f64
        };
        Some(SplitAssignment {
            groups: teams,
            merge_affinity,
        })
    }
}

/// Random split baseline for the same decomposable setting.
pub fn random_split(
    cands: &[Candidate],
    aff: &dyn AffinityLookup,
    constraints: &TeamConstraints,
    n_groups: usize,
    rng: &mut crowd4u_sim::rng::SimRng,
) -> Option<SplitAssignment> {
    if n_groups == 0 || cands.len() < n_groups * constraints.min_size {
        return None;
    }
    let mut idx: Vec<usize> = (0..cands.len()).collect();
    rng.shuffle(&mut idx);
    let per = (cands.len() / n_groups).min(constraints.max_size);
    let mut groups = Vec::with_capacity(n_groups);
    let mut at = 0;
    for _ in 0..n_groups {
        let take = per.min(idx.len() - at);
        let members: Vec<WorkerId> = idx[at..at + take].iter().map(|&i| cands[i].id).collect();
        at += take;
        if members.len() < constraints.min_size {
            return None;
        }
        groups.push(Team::assemble(members, cands, aff));
    }
    Some(SplitAssignment {
        groups,
        merge_affinity: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd4u_crowd::affinity::AffinityMatrix;
    use crowd4u_sim::rng::SimRng;

    fn clustered_instance() -> (Vec<Candidate>, AffinityMatrix) {
        // Two natural clusters of 3: {0,1,2} and {3,4,5}.
        let cands: Vec<Candidate> = (0..6u64)
            .map(|i| Candidate::new(WorkerId(i), 0.6, 0.0))
            .collect();
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        for i in 0..6u64 {
            for j in (i + 1)..6 {
                let same = (i < 3) == (j < 3);
                m.set(WorkerId(i), WorkerId(j), if same { 0.9 } else { 0.1 });
            }
        }
        (cands, m)
    }

    #[test]
    fn split_finds_natural_clusters() {
        let (cands, m) = clustered_instance();
        let s = GrpSplit::new(2)
            .split(&cands, &m, &TeamConstraints::sized(3, 3))
            .unwrap();
        assert_eq!(s.groups.len(), 2);
        assert_eq!(s.total_workers(), 6);
        for g in &s.groups {
            assert!(
                (g.affinity - 0.9).abs() < 1e-9,
                "each group should be one cluster: {g}"
            );
        }
        assert!((s.merge_affinity - 0.1).abs() < 1e-9);
        assert!((s.mean_group_affinity() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn split_beats_random_on_clusters() {
        let (cands, m) = clustered_instance();
        let constraints = TeamConstraints::sized(3, 3);
        let s = GrpSplit::new(2).split(&cands, &m, &constraints).unwrap();
        let mut rng = SimRng::seed_from(11);
        let mut random_better = 0;
        for _ in 0..20 {
            let r = random_split(&cands, &m, &constraints, 2, &mut rng).unwrap();
            if r.mean_group_affinity() > s.mean_group_affinity() + 1e-12 {
                random_better += 1;
            }
        }
        assert_eq!(
            random_better, 0,
            "random split should never beat Grp&Split here"
        );
    }

    #[test]
    fn split_infeasible_cases() {
        let (cands, m) = clustered_instance();
        // not enough workers for 3 groups of 3
        assert!(GrpSplit::new(3)
            .split(&cands, &m, &TeamConstraints::sized(3, 3))
            .is_none());
        // zero groups
        assert!(GrpSplit::new(0)
            .split(&cands, &m, &TeamConstraints::sized(1, 3))
            .is_none());
        // quality unreachable
        assert!(GrpSplit::new(2)
            .split(&cands, &m, &TeamConstraints::sized(3, 3).with_quality(0.95))
            .is_none());
    }

    #[test]
    fn split_respects_max_size() {
        let cands: Vec<Candidate> = (0..10u64)
            .map(|i| Candidate::new(WorkerId(i), 0.5, 0.0))
            .collect();
        let m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        let s = GrpSplit::new(2)
            .split(&cands, &m, &TeamConstraints::sized(2, 4))
            .unwrap();
        for g in &s.groups {
            assert!(g.size() >= 2 && g.size() <= 4);
        }
        // Workers beyond capacity are simply left unassigned.
        assert!(s.total_workers() <= 8);
    }

    #[test]
    fn split_respects_budget() {
        let cands: Vec<Candidate> = (0..6u64)
            .map(|i| Candidate::new(WorkerId(i), 0.5, 2.0))
            .collect();
        let m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        let s = GrpSplit::new(2)
            .split(&cands, &m, &TeamConstraints::sized(2, 3).with_budget(4.0))
            .unwrap();
        for g in &s.groups {
            assert!(g.cost <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn random_split_feasibility() {
        let (cands, m) = clustered_instance();
        let mut rng = SimRng::seed_from(5);
        let r = random_split(&cands, &m, &TeamConstraints::sized(3, 3), 2, &mut rng).unwrap();
        assert_eq!(r.groups.len(), 2);
        assert_eq!(r.total_workers(), 6);
        assert!(random_split(&cands, &m, &TeamConstraints::sized(4, 4), 2, &mut rng).is_none());
    }
}
