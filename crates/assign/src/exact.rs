//! Exact team formation via branch and bound.
//!
//! Optimal but exponential — \[9\] proves the problem NP-complete, and
//! experiment E7 shows exactly where this algorithm stops being viable,
//! which is the paper's motivation for the approximations in the sibling
//! modules. An optional affinity upper-bound pruning step (DESIGN.md §5
//! ablation 3) keeps the search practical into the low twenties of workers.

use crate::types::{Candidate, Team, TeamConstraints, TeamFormation};
use crowd4u_crowd::affinity::AffinityLookup;
use crowd4u_crowd::profile::WorkerId;

/// Branch-and-bound exact solver.
#[derive(Debug, Clone)]
pub struct ExactBB {
    /// Enable the optimistic-affinity pruning bound.
    pub prune: bool,
    /// Safety valve: give up (returning the best found so far) after this
    /// many explored nodes. `u64::MAX` = run to completion.
    pub node_budget: u64,
}

impl Default for ExactBB {
    fn default() -> Self {
        ExactBB {
            prune: true,
            node_budget: u64::MAX,
        }
    }
}

impl ExactBB {
    pub fn without_pruning() -> ExactBB {
        ExactBB {
            prune: false,
            ..Default::default()
        }
    }

    pub fn with_node_budget(budget: u64) -> ExactBB {
        ExactBB {
            node_budget: budget,
            ..Default::default()
        }
    }
}

struct Search<'a> {
    cands: &'a [Candidate],
    aff: &'a dyn AffinityLookup,
    constraints: &'a TeamConstraints,
    max_edge: f64,
    prune: bool,
    budget: u64,
    nodes: u64,
    best: Option<(f64, Vec<WorkerId>)>,
}

fn pairs(k: usize) -> f64 {
    (k * k.saturating_sub(1) / 2) as f64
}

impl<'a> Search<'a> {
    /// Mean pairwise affinity achievable from the current partial team, in
    /// the most optimistic completion; used for pruning.
    fn upper_bound(&self, pair_sum: f64, size: usize) -> f64 {
        let lo = size.max(self.constraints.min_size).max(2);
        let hi = self.constraints.max_size;
        let mut best = f64::NEG_INFINITY;
        for k in lo..=hi {
            let extra = pairs(k) - pairs(size);
            let ub = (pair_sum + extra * self.max_edge) / pairs(k).max(1.0);
            if ub > best {
                best = ub;
            }
        }
        best
    }

    fn consider(&mut self, team: &[WorkerId], pair_sum: f64, skill_sum: f64, cost_sum: f64) {
        let n = team.len();
        if n < self.constraints.min_size || n == 0 {
            return;
        }
        if skill_sum / n as f64 + 1e-12 < self.constraints.min_quality {
            return;
        }
        if cost_sum > self.constraints.max_cost + 1e-12 {
            return;
        }
        let mean = if n < 2 { 0.0 } else { pair_sum / pairs(n) };
        let better = match &self.best {
            None => true,
            Some((b, members)) => {
                mean > *b + 1e-15 || (mean >= *b - 1e-15 && team.len() < members.len())
            }
        };
        if better {
            self.best = Some((mean, team.to_vec()));
        }
    }

    fn recurse(
        &mut self,
        idx: usize,
        team: &mut Vec<WorkerId>,
        pair_sum: f64,
        skill_sum: f64,
        cost_sum: f64,
    ) {
        self.nodes += 1;
        if self.nodes > self.budget {
            return;
        }
        self.consider(team, pair_sum, skill_sum, cost_sum);
        if team.len() == self.constraints.max_size || idx == self.cands.len() {
            return;
        }
        // Prune: even the most optimistic completion cannot beat the best.
        if self.prune {
            if let Some((best, _)) = &self.best {
                if self.upper_bound(pair_sum, team.len()) <= *best + 1e-15 {
                    return;
                }
            }
        }
        // Branch 1: include candidate idx.
        let c = &self.cands[idx];
        if cost_sum + c.cost <= self.constraints.max_cost + 1e-12 {
            let added: f64 = team.iter().map(|m| self.aff.affinity(*m, c.id)).sum();
            team.push(c.id);
            self.recurse(
                idx + 1,
                team,
                pair_sum + added,
                skill_sum + c.skill,
                cost_sum + c.cost,
            );
            team.pop();
        }
        // Branch 2: exclude candidate idx.
        self.recurse(idx + 1, team, pair_sum, skill_sum, cost_sum);
    }
}

impl TeamFormation for ExactBB {
    fn name(&self) -> &'static str {
        if self.prune {
            "exact-bb"
        } else {
            "exact-exhaustive"
        }
    }

    fn form(
        &self,
        cands: &[Candidate],
        aff: &dyn AffinityLookup,
        constraints: &TeamConstraints,
    ) -> Option<Team> {
        if constraints.min_size == 0 || constraints.min_size > constraints.max_size {
            return None;
        }
        let mut max_edge: f64 = 0.0;
        for (i, a) in cands.iter().enumerate() {
            for b in cands.iter().skip(i + 1) {
                max_edge = max_edge.max(aff.affinity(a.id, b.id));
            }
        }
        let mut search = Search {
            cands,
            aff,
            constraints,
            max_edge,
            prune: self.prune,
            budget: self.node_budget,
            nodes: 0,
            best: None,
        };
        let mut team = Vec::with_capacity(constraints.max_size);
        search.recurse(0, &mut team, 0.0, 0.0, 0.0);
        let (_, members) = search.best?;
        Some(Team::assemble(members, cands, aff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::validate_team;
    use crowd4u_crowd::affinity::AffinityMatrix;

    fn pool(n: u64) -> (Vec<Candidate>, AffinityMatrix) {
        let cands: Vec<Candidate> = (0..n)
            .map(|i| Candidate::new(WorkerId(i), 0.5, 1.0))
            .collect();
        let m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        (cands, m)
    }

    #[test]
    fn finds_the_obvious_clique() {
        let (cands, mut m) = pool(6);
        // Workers 0,1,2 form a tight clique.
        m.set(WorkerId(0), WorkerId(1), 0.9);
        m.set(WorkerId(0), WorkerId(2), 0.9);
        m.set(WorkerId(1), WorkerId(2), 0.9);
        m.set(WorkerId(3), WorkerId(4), 0.4);
        let t = ExactBB::default()
            .form(&cands, &m, &TeamConstraints::sized(3, 3))
            .unwrap();
        let mut members = t.members.clone();
        members.sort();
        assert_eq!(members, vec![WorkerId(0), WorkerId(1), WorkerId(2)]);
        assert!((t.affinity - 0.9).abs() < 1e-12);
    }

    #[test]
    fn respects_quality_constraint() {
        let mut cands: Vec<Candidate> = Vec::new();
        for i in 0..4u64 {
            // workers 0,1 low skill but high affinity; 2,3 high skill
            let skill = if i < 2 { 0.2 } else { 0.9 };
            cands.push(Candidate::new(WorkerId(i), skill, 0.0));
        }
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        m.set(WorkerId(0), WorkerId(1), 1.0);
        m.set(WorkerId(2), WorkerId(3), 0.3);
        let constraints = TeamConstraints::sized(2, 2).with_quality(0.8);
        let t = ExactBB::default().form(&cands, &m, &constraints).unwrap();
        let mut members = t.members.clone();
        members.sort();
        assert_eq!(members, vec![WorkerId(2), WorkerId(3)]);
        assert!(validate_team(&t, &cands, &constraints));
    }

    #[test]
    fn respects_cost_budget() {
        let cands = vec![
            Candidate::new(WorkerId(0), 0.5, 10.0),
            Candidate::new(WorkerId(1), 0.5, 10.0),
            Candidate::new(WorkerId(2), 0.5, 1.0),
            Candidate::new(WorkerId(3), 0.5, 1.0),
        ];
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        m.set(WorkerId(0), WorkerId(1), 1.0); // great but unaffordable
        m.set(WorkerId(2), WorkerId(3), 0.5);
        let constraints = TeamConstraints::sized(2, 2).with_budget(5.0);
        let t = ExactBB::default().form(&cands, &m, &constraints).unwrap();
        let mut members = t.members.clone();
        members.sort();
        assert_eq!(members, vec![WorkerId(2), WorkerId(3)]);
    }

    #[test]
    fn infeasible_returns_none() {
        let (cands, m) = pool(3);
        // quality unreachable
        assert!(ExactBB::default()
            .form(&cands, &m, &TeamConstraints::sized(2, 3).with_quality(0.9))
            .is_none());
        // not enough workers
        assert!(ExactBB::default()
            .form(&cands, &m, &TeamConstraints::sized(4, 5))
            .is_none());
        // degenerate constraints
        assert!(ExactBB::default()
            .form(&cands, &m, &TeamConstraints::sized(3, 2))
            .is_none());
        // empty pool
        assert!(ExactBB::default()
            .form(&[], &m, &TeamConstraints::sized(1, 2))
            .is_none());
    }

    #[test]
    fn pruned_equals_unpruned() {
        // Deterministic pseudo-random affinities; both variants must agree
        // on the optimal objective.
        let n = 10u64;
        let cands: Vec<Candidate> = (0..n)
            .map(|i| Candidate::new(WorkerId(i), 0.3 + (i as f64) * 0.07 % 0.7, (i % 3) as f64))
            .collect();
        let mut m = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
        for i in 0..n {
            for j in (i + 1)..n {
                let v = ((i * 7 + j * 13) % 10) as f64 / 10.0;
                m.set(WorkerId(i), WorkerId(j), v);
            }
        }
        let constraints = TeamConstraints::sized(2, 4)
            .with_quality(0.35)
            .with_budget(6.0);
        let a = ExactBB::default().form(&cands, &m, &constraints).unwrap();
        let b = ExactBB::without_pruning()
            .form(&cands, &m, &constraints)
            .unwrap();
        assert!(
            (a.affinity - b.affinity).abs() < 1e-12,
            "pruned {} vs unpruned {}",
            a.affinity,
            b.affinity
        );
    }

    #[test]
    fn min_size_one_allows_singletons() {
        let (cands, m) = pool(2);
        let t = ExactBB::default()
            .form(&cands, &m, &TeamConstraints::sized(1, 1))
            .unwrap();
        assert_eq!(t.size(), 1);
        assert_eq!(t.affinity, 0.0);
    }

    #[test]
    fn prefers_smaller_team_on_ties() {
        // All affinities zero: a minimal feasible team is preferred.
        let (cands, m) = pool(5);
        let t = ExactBB::default()
            .form(&cands, &m, &TeamConstraints::sized(2, 5))
            .unwrap();
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn node_budget_still_returns_feasible() {
        let (cands, mut m) = pool(12);
        for i in 0..12u64 {
            for j in (i + 1)..12 {
                m.set(WorkerId(i), WorkerId(j), ((i + j) % 5) as f64 / 5.0);
            }
        }
        let t = ExactBB::with_node_budget(50)
            .form(&cands, &m, &TeamConstraints::sized(2, 4))
            .unwrap();
        assert!(validate_team(&t, &cands, &TeamConstraints::sized(2, 4)));
    }

    #[test]
    fn names() {
        assert_eq!(ExactBB::default().name(), "exact-bb");
        assert_eq!(ExactBB::without_pruning().name(), "exact-exhaustive");
    }
}
