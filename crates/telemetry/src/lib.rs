//! # crowd4u-telemetry — sharded metrics, span tracing, Prometheus text
//!
//! The platform-wide observability layer: a [`Registry`] of named
//! **counters**, **gauges** and **log-bucketed histograms**, scraped into a
//! [`MetricsSnapshot`] and rendered in the Prometheus text exposition
//! format. Zero external dependencies (same vendored-shim discipline as
//! the rest of the workspace — this crate needs none at all).
//!
//! ## Design: per-shard handles, merge on scrape
//!
//! Hot paths never share metric state across shards. Each shard (or
//! subsystem) asks the registry for its own [`TelemetryHandle`]; every
//! metric fetched through a handle is a private atomic cell owned by that
//! handle. A scrape ([`Registry::snapshot`]) walks all handles and merges
//! same-named cells — counters and gauges by summation, histograms
//! bucket-wise. Two consequences:
//!
//! * **no cross-shard contention**: an `incr`/`observe` touches an atomic
//!   no other shard writes;
//! * **scrapes never block producers**: the per-handle mutex only guards
//!   the name→cell map (locked when a metric is first fetched and during
//!   a scrape); recording goes straight to the atomics, lock-free.
//!
//! ## Observe-only and cheap
//!
//! Telemetry must never change platform behaviour (journals with
//! telemetry on and off are proven byte-identical by
//! `tests/telemetry_equivalence.rs`) and must cost ~nothing when off:
//! [`Registry::disabled`] hands out handles whose metrics are `None`
//! inside — an `incr` is a branch on a niche-optimised option, a
//! [`Span`] never reads the clock.
//!
//! ## Spans
//!
//! A [`Span`] is an RAII timer: created via [`Histogram::span`] (or the
//! [`span!`] macro), it observes its elapsed nanoseconds into the
//! histogram on drop. The five pipeline-stage histograms are named in
//! [`stage`].
//!
//! ```
//! use crowd4u_telemetry::{stage, Registry};
//! let registry = Registry::new();
//! let handle = registry.handle();
//! let hist = handle.histogram(stage::GATE_ADMIT);
//! {
//!     let _span = hist.span(); // observed on drop
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.histogram_count(stage::GATE_ADMIT), 1);
//! assert!(snap.render().contains("crowd4u_stage_gate_admit_ns_count"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Env knob: `TELEMETRY=0|off|false|no` disables the default registry
/// built by [`Registry::from_env`]; anything else (or unset) enables it.
pub const TELEMETRY_ENV: &str = "TELEMETRY";

/// Env knob: histogram bucket base for [`Registry::from_env`] (default 2
/// — each bucket boundary doubles). Rounded down to a power of two.
pub const BUCKET_BASE_ENV: &str = "TELEMETRY_BUCKET_BASE";

/// Canonical metric names of the five pipeline-stage histograms (elapsed
/// nanoseconds per event at each stage), plus the shard-lifecycle
/// recovery/migration metrics.
pub mod stage {
    /// Front-door admission: routing + stamping + mailbox push.
    pub const GATE_ADMIT: &str = "crowd4u_stage_gate_admit_ns";
    /// Dwell between mailbox enqueue and the shard popping the message.
    pub const MAILBOX_DWELL: &str = "crowd4u_stage_mailbox_dwell_ns";
    /// A shard applying one event to its platform slice.
    pub const SHARD_APPLY: &str = "crowd4u_stage_shard_apply_ns";
    /// One CyLog fixpoint pass (`CylogEngine::run`).
    pub const CYLOG_FIXPOINT: &str = "crowd4u_stage_cylog_fixpoint_ns";
    /// Appending one entry to the event journal.
    pub const JOURNAL_APPEND: &str = "crowd4u_stage_journal_append_ns";
    /// All five, in pipeline order.
    pub const ALL: [&str; 5] = [
        GATE_ADMIT,
        MAILBOX_DWELL,
        SHARD_APPLY,
        CYLOG_FIXPOINT,
        JOURNAL_APPEND,
    ];
    /// Shard recoveries completed (counter): one per slice replay after a
    /// shard-thread death.
    pub const RECOVERIES: &str = "crowd4u_recoveries_total";
    /// One shard recovery end to end (histogram, ns): mailbox hold →
    /// ledger slice replay → worker re-attach → release.
    pub const RECOVERY_SPAN: &str = "crowd4u_recovery_ns";
    /// Hot project migrations committed (counter).
    pub const MIGRATIONS: &str = "crowd4u_migrations_total";
}

/// The shared metric registry. Cloneable (cheap `Arc` clone); a disabled
/// registry is a `None` and everything downstream of it is a no-op.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

struct RegistryInner {
    /// log2 of the histogram bucket base (1 ⇒ boundaries double).
    bucket_bits: u32,
    /// Every handle ever issued; scrapes walk this list and merge.
    handles: Mutex<Vec<Arc<Mutex<HandleCells>>>>,
}

#[derive(Default)]
struct HandleCells {
    counters: BTreeMap<(String, String), Arc<AtomicU64>>,
    gauges: BTreeMap<(String, String), Arc<AtomicI64>>,
    histograms: BTreeMap<(String, String), Arc<HistogramCore>>,
}

impl Registry {
    /// An enabled registry with the default bucket base (2).
    pub fn new() -> Registry {
        Registry::with_bucket_base(2)
    }

    /// An enabled registry whose histogram boundaries grow by `base`
    /// (rounded down to a power of two, minimum 2).
    pub fn with_bucket_base(base: u32) -> Registry {
        let bits = 31 - base.max(2).leading_zeros();
        Registry {
            inner: Some(Arc::new(RegistryInner {
                bucket_bits: bits,
                handles: Mutex::new(Vec::new()),
            })),
        }
    }

    /// The no-op registry: handles, metrics and spans all compile down to
    /// a branch on `None`.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Registry configured by [`TELEMETRY_ENV`] / [`BUCKET_BASE_ENV`]
    /// (enabled with base 2 unless told otherwise).
    pub fn from_env() -> Registry {
        let off = std::env::var(TELEMETRY_ENV)
            .map(|v| matches!(v.trim(), "0" | "off" | "false" | "no"))
            .unwrap_or(false);
        if off {
            return Registry::disabled();
        }
        let base = std::env::var(BUCKET_BASE_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        Registry::with_bucket_base(base)
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Issue a fresh handle (one per shard / subsystem). Metrics fetched
    /// through distinct handles never share atomics.
    pub fn handle(&self) -> TelemetryHandle {
        match &self.inner {
            None => TelemetryHandle::disabled(),
            Some(inner) => {
                let cells = Arc::new(Mutex::new(HandleCells::default()));
                inner
                    .handles
                    .lock()
                    .expect("telemetry registry poisoned")
                    .push(Arc::clone(&cells));
                TelemetryHandle {
                    inner: Some(HandleInner {
                        registry: Arc::clone(inner),
                        cells,
                    }),
                }
            }
        }
    }

    /// Scrape: merge every handle's cells into one snapshot. Producers
    /// keep recording concurrently — only the name→cell maps are locked,
    /// never the atomics being written.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let handles = inner
            .handles
            .lock()
            .expect("telemetry registry poisoned")
            .clone();
        for h in handles {
            let cells = h.lock().expect("telemetry handle poisoned");
            for (key, c) in &cells.counters {
                *snap.counters.entry(key.clone()).or_insert(0) += c.load(Ordering::Relaxed);
            }
            for (key, g) in &cells.gauges {
                *snap.gauges.entry(key.clone()).or_insert(0) += g.load(Ordering::Relaxed);
            }
            for (key, hc) in &cells.histograms {
                let entry = snap
                    .histograms
                    .entry(key.clone())
                    .or_insert_with(|| HistogramSnapshot::empty(hc.bits));
                entry.absorb(hc);
            }
        }
        snap
    }
}

#[derive(Clone)]
struct HandleInner {
    registry: Arc<RegistryInner>,
    cells: Arc<Mutex<HandleCells>>,
}

/// A per-shard (or per-subsystem) metric handle. Fetch metrics once at
/// wiring time and keep the returned [`Counter`]/[`Gauge`]/[`Histogram`]
/// — fetching locks the handle's map, recording does not.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<HandleInner>,
}

impl TelemetryHandle {
    /// The no-op handle (what [`Registry::disabled`] issues).
    pub fn disabled() -> TelemetryHandle {
        TelemetryHandle { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Fetch (or create) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, "")
    }

    /// Fetch (or create) a counter carrying a pre-formatted Prometheus
    /// label set, e.g. `shard="2"`.
    pub fn counter_with(&self, name: &str, labels: &str) -> Counter {
        Counter(self.inner.as_ref().map(|h| {
            let mut cells = h.cells.lock().expect("telemetry handle poisoned");
            Arc::clone(
                cells
                    .counters
                    .entry((name.to_string(), labels.to_string()))
                    .or_default(),
            )
        }))
    }

    /// Fetch (or create) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, "")
    }

    /// Fetch (or create) a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|h| {
            let mut cells = h.cells.lock().expect("telemetry handle poisoned");
            Arc::clone(
                cells
                    .gauges
                    .entry((name.to_string(), labels.to_string()))
                    .or_default(),
            )
        }))
    }

    /// Fetch (or create) an unlabelled log-bucketed histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, "")
    }

    /// Fetch (or create) a labelled log-bucketed histogram.
    pub fn histogram_with(&self, name: &str, labels: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|h| {
            let bits = h.registry.bucket_bits;
            let mut cells = h.cells.lock().expect("telemetry handle poisoned");
            Arc::clone(
                cells
                    .histograms
                    .entry((name.to_string(), labels.to_string()))
                    .or_insert_with(|| Arc::new(HistogramCore::new(bits))),
            )
        }))
    }
}

/// Monotonic counter handle. `None` inside ⇒ no-op.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// The no-op counter (for default struct fields).
    pub fn disabled() -> Counter {
        Counter(None)
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Last-write-wins gauge handle (merged across shards by summation, so
/// per-shard gauges should carry a `shard="i"` label). `None` ⇒ no-op.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// The no-op gauge (for default struct fields).
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Lock-free log-bucketed histogram core: bucket `i` counts values whose
/// bit length, divided by the bucket base's bit width (rounded up), is
/// `i` — i.e. boundaries at `base^i`.
struct HistogramCore {
    bits: u32,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

fn bucket_count(bits: u32) -> usize {
    64usize.div_ceil(bits as usize) + 1
}

fn bucket_index(bits: u32, v: u64) -> usize {
    let significant = 64 - v.leading_zeros() as usize; // 0 for v == 0
    significant.div_ceil(bits as usize)
}

/// Inclusive upper bound of bucket `i` (`base^i − 1`), as a decimal
/// string, or `+Inf` for the top bucket.
fn bucket_bound(bits: u32, i: usize) -> String {
    if i + 1 >= bucket_count(bits) {
        "+Inf".to_string()
    } else {
        ((1u128 << (i as u32 * bits)) - 1).to_string()
    }
}

impl HistogramCore {
    fn new(bits: u32) -> HistogramCore {
        HistogramCore {
            bits,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..bucket_count(bits)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(self.bits, v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Histogram handle. `None` inside ⇒ no-op (spans skip the clock).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// The no-op histogram (for default struct fields).
    pub fn disabled() -> Histogram {
        Histogram(None)
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Start an RAII span feeding this histogram: elapsed nanoseconds are
    /// observed when the returned [`Span`] drops. Disabled histograms
    /// never read the clock.
    #[inline]
    pub fn span(&self) -> Span {
        Span {
            core: self.0.clone(),
            start: self.0.as_ref().map(|_| Instant::now()),
        }
    }

    /// A timestamp for a deferred dwell measurement ([`Histogram::since`]
    /// closes it), `None` when disabled — the producer side of a
    /// cross-thread span whose two ends live in different scopes.
    #[inline]
    pub fn stamp(&self) -> Option<Instant> {
        self.0.as_ref().map(|_| Instant::now())
    }

    /// Close a [`Histogram::stamp`]: observe the elapsed nanoseconds.
    #[inline]
    pub fn since(&self, stamp: Option<Instant>) {
        if let (Some(h), Some(t)) = (&self.0, stamp) {
            h.observe(elapsed_ns(t));
        }
    }
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII stage timer: observes elapsed nanoseconds into its histogram on
/// drop. Obtained from [`Histogram::span`] or the [`span!`] macro.
pub struct Span {
    core: Option<Arc<HistogramCore>>,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(h), Some(t)) = (&self.core, self.start) {
            h.observe(elapsed_ns(t));
        }
    }
}

/// `span!(hist)` starts an RAII timer on a pre-fetched [`Histogram`];
/// `span!(handle, "gate.admit")` fetches the histogram from a
/// [`TelemetryHandle`] first (map lookup — keep off hot paths).
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $hist.span()
    };
    ($handle:expr, $name:expr) => {
        $handle.histogram($name).span()
    };
}

/// One merged histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    bits: u32,
    /// Per-bucket (non-cumulative) counts; rendering accumulates.
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn empty(bits: u32) -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            bits,
            buckets: vec![0; bucket_count(bits)],
        }
    }

    fn absorb(&mut self, core: &HistogramCore) {
        debug_assert_eq!(self.bits, core.bits, "one bucket base per registry");
        self.count += core.count.load(Ordering::Relaxed);
        self.sum += core.sum.load(Ordering::Relaxed);
        for (b, c) in self.buckets.iter_mut().zip(&core.buckets) {
            *b += c.load(Ordering::Relaxed);
        }
    }
}

/// A merged point-in-time view of every metric, keyed by
/// `(name, labels)`. [`MetricsSnapshot::render`] produces the Prometheus
/// text exposition format.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<(String, String), u64>,
    pub gauges: BTreeMap<(String, String), i64>,
    pub histograms: BTreeMap<(String, String), HistogramSnapshot>,
}

fn sample_line(out: &mut String, name: &str, labels: &str, extra: &str, value: &str) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        out.push_str(labels);
        if !labels.is_empty() && !extra.is_empty() {
            out.push(',');
        }
        out.push_str(extra);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

impl MetricsSnapshot {
    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Sum of a gauge across all label sets (`None` if never set).
    pub fn gauge_total(&self, name: &str) -> Option<i64> {
        let vals: Vec<i64> = self
            .gauges
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum())
        }
    }

    /// Total observation count of a histogram across all label sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, h)| h.count)
            .sum()
    }

    /// Render in the Prometheus text exposition format: `# TYPE` headers,
    /// cumulative `_bucket{le=…}` series (zero-delta buckets elided),
    /// `_sum`/`_count` per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(char, String)> = None;
        let mut typed = |out: &mut String, kind: char, name: &str, ty: &str| {
            if last_type.as_ref() != Some(&(kind, name.to_string())) {
                out.push_str(&format!("# TYPE {name} {ty}\n"));
                last_type = Some((kind, name.to_string()));
            }
        };
        for ((name, labels), v) in &self.counters {
            typed(&mut out, 'c', name, "counter");
            sample_line(&mut out, name, labels, "", &v.to_string());
        }
        for ((name, labels), v) in &self.gauges {
            typed(&mut out, 'g', name, "gauge");
            sample_line(&mut out, name, labels, "", &v.to_string());
        }
        for ((name, labels), h) in &self.histograms {
            typed(&mut out, 'h', name, "histogram");
            let bucket_name = format!("{name}_bucket");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                let last = i + 1 == h.buckets.len();
                if c == 0 && !last {
                    continue;
                }
                cumulative += c;
                let le = format!("le=\"{}\"", bucket_bound(h.bits, i));
                sample_line(&mut out, &bucket_name, labels, &le, &cumulative.to_string());
            }
            sample_line(
                &mut out,
                &format!("{name}_sum"),
                labels,
                "",
                &h.sum.to_string(),
            );
            sample_line(
                &mut out,
                &format!("{name}_count"),
                labels,
                "",
                &h.count.to_string(),
            );
        }
        out
    }
}

/// Validate a Prometheus text exposition: every sample line must be
/// `name{labels} value` with a parseable finite value, `# TYPE` comments
/// must precede their family. Returns the number of sample lines.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("TYPE") {
                return Err(format!("line {n}: unknown comment {line:?}"));
            }
            let (name, ty) = (parts.next(), parts.next());
            if name.is_none() || !matches!(ty, Some("counter" | "gauge" | "histogram")) {
                return Err(format!("line {n}: malformed TYPE comment {line:?}"));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no value in {line:?}"))?;
        let name = series.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {n}: bad metric name in {line:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {n}: unclosed label set in {line:?}"));
        }
        if value != "+Inf" && !value.parse::<f64>().map(f64::is_finite).unwrap_or(false) {
            return Err(format!("line {n}: unparseable value in {line:?}"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_a_no_op() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let h = r.handle();
        let c = h.counter("crowd4u_test_total");
        c.incr();
        h.gauge("crowd4u_test_gauge").set(7);
        let hist = h.histogram("crowd4u_test_ns");
        hist.observe(9);
        drop(hist.span());
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.render().is_empty());
    }

    #[test]
    fn per_shard_handles_merge_on_scrape() {
        let r = Registry::new();
        let (h0, h1) = (r.handle(), r.handle());
        h0.counter("crowd4u_events_total").add(3);
        h1.counter("crowd4u_events_total").add(4);
        h0.gauge_with("crowd4u_lag", "shard=\"0\"").set(2);
        h1.gauge_with("crowd4u_lag", "shard=\"1\"").set(5);
        h0.histogram("crowd4u_apply_ns").observe(10);
        h1.histogram("crowd4u_apply_ns").observe(1000);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("crowd4u_events_total"), 7);
        assert_eq!(snap.gauge_total("crowd4u_lag"), Some(7));
        assert_eq!(
            snap.gauges
                .get(&("crowd4u_lag".into(), "shard=\"1\"".into())),
            Some(&5)
        );
        let h = &snap.histograms[&("crowd4u_apply_ns".into(), String::new())];
        assert_eq!((h.count, h.sum), (2, 1010));
    }

    #[test]
    fn bucket_indexing_is_logarithmic() {
        assert_eq!(bucket_index(1, 0), 0);
        assert_eq!(bucket_index(1, 1), 1);
        assert_eq!(bucket_index(1, 2), 2);
        assert_eq!(bucket_index(1, 3), 2);
        assert_eq!(bucket_index(1, 4), 3);
        assert_eq!(bucket_index(1, u64::MAX), 64);
        assert_eq!(bucket_count(1), 65);
        // base 4 = 2 bits per bucket: 0, 1..=3, 4..=15, …
        assert_eq!(bucket_index(2, 3), 1);
        assert_eq!(bucket_index(2, 4), 2);
        assert_eq!(bucket_index(2, 15), 2);
        assert_eq!(bucket_index(2, 16), 3);
        assert_eq!(bucket_bound(1, 1), "1");
        assert_eq!(bucket_bound(1, 3), "7");
        assert_eq!(bucket_bound(1, 64), "+Inf");
    }

    #[test]
    fn span_feeds_its_histogram() {
        let r = Registry::new();
        let h = r.handle();
        let hist = h.histogram(stage::SHARD_APPLY);
        for _ in 0..3 {
            let _span = span!(hist);
        }
        drop(span!(h, stage::GATE_ADMIT));
        let snap = r.snapshot();
        assert_eq!(snap.histogram_count(stage::SHARD_APPLY), 3);
        assert_eq!(snap.histogram_count(stage::GATE_ADMIT), 1);
    }

    #[test]
    fn dwell_stamps_measure_across_scopes() {
        let r = Registry::new();
        let h = r.handle();
        let hist = h.histogram(stage::MAILBOX_DWELL);
        let t = hist.stamp();
        assert!(t.is_some());
        hist.since(t);
        hist.since(None); // lost stamp: no observation
        assert_eq!(r.snapshot().histogram_count(stage::MAILBOX_DWELL), 1);
        assert!(Histogram::disabled().stamp().is_none());
    }

    #[test]
    fn render_is_valid_exposition() {
        let r = Registry::with_bucket_base(4);
        let h = r.handle();
        h.counter("crowd4u_events_total").add(2);
        h.counter_with("crowd4u_events_total", "shard=\"1\"").incr();
        h.gauge("crowd4u_worker_min_cursor").set(42);
        let hist = h.histogram(stage::JOURNAL_APPEND);
        hist.observe(0);
        hist.observe(5);
        hist.observe(300);
        let text = r.snapshot().render();
        assert!(text.contains("# TYPE crowd4u_events_total counter"));
        assert!(text.contains("crowd4u_events_total{shard=\"1\"} 1"));
        assert!(text.contains("crowd4u_worker_min_cursor 42"));
        assert!(text.contains("crowd4u_stage_journal_append_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("crowd4u_stage_journal_append_ns_sum 305"));
        // Cumulative le series: 0 lands in le="0", 5 in le="15", 300 in
        // le="1023" (base 4 ⇒ boundaries 4^i − 1).
        assert!(text.contains("crowd4u_stage_journal_append_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("crowd4u_stage_journal_append_ns_bucket{le=\"15\"} 2"));
        assert!(text.contains("crowd4u_stage_journal_append_ns_bucket{le=\"1023\"} 3"));
        let samples = validate_exposition(&text).expect("valid exposition");
        assert!(samples >= 9);
    }

    #[test]
    fn validate_rejects_malformed_lines() {
        assert!(validate_exposition("bad-name 1\n").is_err());
        assert!(validate_exposition("name{unclosed 1\n").is_err());
        assert!(validate_exposition("name one\n").is_err());
        assert!(validate_exposition("# HELP x y\n").is_err());
        assert_eq!(validate_exposition("# TYPE a counter\na 1\n"), Ok(1));
    }

    #[test]
    fn handles_are_send_and_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<TelemetryHandle>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<MetricsSnapshot>();
    }
}
