//! Worker skill estimation from team task history.
//!
//! Paper §2.4 says skills are "computed by the system based on previously
//! performed tasks (e.g., via qualification tests, or by learning workers'
//! profiles as in \[10\])". Reference \[10\] (Rahman et al., PVLDB 2015)
//! estimates *individual* skills from the observed quality of *team* tasks.
//!
//! This module implements the additive-model variant: the observed quality
//! of a team task is modelled as the mean of its members' skills plus noise;
//! skills are recovered by damped iterative least squares (a simple
//! coordinate-descent fit that converges for any history and needs no
//! external solver).

use crate::profile::WorkerId;
use std::collections::{BTreeMap, HashMap};

/// One observed team task outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamObservation {
    pub members: Vec<WorkerId>,
    /// Observed quality in `[0,1]`.
    pub quality: f64,
}

impl TeamObservation {
    pub fn new(members: Vec<WorkerId>, quality: f64) -> TeamObservation {
        TeamObservation {
            members,
            quality: quality.clamp(0.0, 1.0),
        }
    }
}

/// Configuration for the estimator.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Damping factor in `(0,1]`: fraction of the residual applied per sweep.
    pub learning_rate: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Stop when the max skill change in a sweep drops below this.
    pub tolerance: f64,
    /// Prior skill for unseen workers.
    pub prior: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            learning_rate: 0.5,
            max_sweeps: 200,
            tolerance: 1e-6,
            prior: 0.5,
        }
    }
}

/// Result of a fit: per-worker skill estimates plus fit diagnostics.
#[derive(Debug, Clone)]
pub struct SkillEstimate {
    pub skills: BTreeMap<WorkerId, f64>,
    /// Root-mean-square error of the final fit over the observations.
    pub rmse: f64,
    pub sweeps: usize,
}

impl SkillEstimate {
    pub fn skill(&self, w: WorkerId) -> Option<f64> {
        self.skills.get(&w).copied()
    }
}

/// Fit individual skills from team observations.
///
/// Model: `quality(T) ≈ mean_{w ∈ T} skill(w)`. Each sweep visits every
/// worker and nudges their skill by the mean residual of the observations
/// they took part in, scaled by `learning_rate`; skills stay in `[0,1]`.
pub fn estimate_skills(
    observations: &[TeamObservation],
    config: &EstimatorConfig,
) -> SkillEstimate {
    // Collect the worker universe and per-worker observation index.
    let mut involved: HashMap<WorkerId, Vec<usize>> = HashMap::new();
    for (i, o) in observations.iter().enumerate() {
        for &w in &o.members {
            involved.entry(w).or_default().push(i);
        }
    }
    let mut skills: BTreeMap<WorkerId, f64> = involved.keys().map(|&w| (w, config.prior)).collect();

    let predict = |skills: &BTreeMap<WorkerId, f64>, o: &TeamObservation| -> f64 {
        if o.members.is_empty() {
            return 0.0;
        }
        o.members.iter().map(|w| skills[w]).sum::<f64>() / o.members.len() as f64
    };

    let mut sweeps = 0;
    for _ in 0..config.max_sweeps {
        sweeps += 1;
        let mut max_delta: f64 = 0.0;
        // Deterministic worker order (BTreeMap).
        let ids: Vec<WorkerId> = skills.keys().copied().collect();
        for w in ids {
            let obs = &involved[&w];
            if obs.is_empty() {
                continue;
            }
            let mut residual = 0.0;
            for &i in obs {
                let o = &observations[i];
                residual += o.quality - predict(&skills, o);
            }
            residual /= obs.len() as f64;
            let old = skills[&w];
            let new = (old + config.learning_rate * residual).clamp(0.0, 1.0);
            max_delta = max_delta.max((new - old).abs());
            skills.insert(w, new);
        }
        if max_delta < config.tolerance {
            break;
        }
    }

    let mut sq = 0.0;
    for o in observations {
        if o.members.is_empty() {
            continue;
        }
        let e = o.quality - predict(&skills, o);
        sq += e * e;
    }
    let n = observations
        .iter()
        .filter(|o| !o.members.is_empty())
        .count();
    let rmse = if n == 0 { 0.0 } else { (sq / n as f64).sqrt() };

    SkillEstimate {
        skills,
        rmse,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u64) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn empty_history_gives_empty_estimate() {
        let e = estimate_skills(&[], &EstimatorConfig::default());
        assert!(e.skills.is_empty());
        assert_eq!(e.rmse, 0.0);
    }

    #[test]
    fn solo_observations_recover_exact_skills() {
        let obs = vec![
            TeamObservation::new(vec![w(1)], 0.9),
            TeamObservation::new(vec![w(2)], 0.3),
        ];
        let e = estimate_skills(&obs, &EstimatorConfig::default());
        assert!((e.skill(w(1)).unwrap() - 0.9).abs() < 1e-3);
        assert!((e.skill(w(2)).unwrap() - 0.3).abs() < 1e-3);
        assert!(e.rmse < 1e-3);
    }

    #[test]
    fn team_observations_disentangle_members() {
        // skill(1)=0.8, skill(2)=0.4, skill(3)=0.6 — observe pair means.
        let truth = [(1u64, 0.8), (2, 0.4), (3, 0.6)];
        let mut obs = Vec::new();
        for (a, sa) in truth {
            for (b, sb) in truth {
                if a < b {
                    obs.push(TeamObservation::new(vec![w(a), w(b)], (sa + sb) / 2.0));
                }
            }
        }
        // Anchor with solo observations so the system is fully determined.
        for (a, sa) in truth {
            obs.push(TeamObservation::new(vec![w(a)], sa));
        }
        let e = estimate_skills(&obs, &EstimatorConfig::default());
        for (a, sa) in truth {
            assert!(
                (e.skill(w(a)).unwrap() - sa).abs() < 0.02,
                "worker {a}: got {}, want {sa}",
                e.skill(w(a)).unwrap()
            );
        }
        assert!(e.rmse < 0.02);
    }

    #[test]
    fn noisy_observations_still_rank_correctly() {
        // Worker 1 genuinely better than worker 2; noise ±0.05.
        let noise: [f64; 6] = [0.05, -0.04, 0.03, -0.02, 0.01, -0.05];
        let mut obs = Vec::new();
        for (i, n) in noise.iter().enumerate() {
            let q1 = (0.85 + n).clamp(0.0, 1.0);
            let q2 = (0.35 - n).clamp(0.0, 1.0);
            obs.push(TeamObservation::new(vec![w(1), w(10 + i as u64)], q1));
            obs.push(TeamObservation::new(vec![w(2), w(10 + i as u64)], q2));
        }
        let e = estimate_skills(&obs, &EstimatorConfig::default());
        assert!(e.skill(w(1)).unwrap() > e.skill(w(2)).unwrap() + 0.2);
    }

    #[test]
    fn estimates_stay_in_unit_interval() {
        let obs = vec![
            TeamObservation::new(vec![w(1)], 1.0),
            TeamObservation::new(vec![w(1)], 1.0),
            TeamObservation::new(vec![w(2)], 0.0),
        ];
        let e = estimate_skills(&obs, &EstimatorConfig::default());
        for s in e.skills.values() {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn quality_clamped_on_construction() {
        let o = TeamObservation::new(vec![w(1)], 3.0);
        assert_eq!(o.quality, 1.0);
        let o = TeamObservation::new(vec![w(1)], -3.0);
        assert_eq!(o.quality, 0.0);
    }

    #[test]
    fn sweeps_bounded_and_reported() {
        let obs = vec![TeamObservation::new(vec![w(1), w(2)], 0.6)];
        let cfg = EstimatorConfig {
            max_sweeps: 3,
            tolerance: 0.0,
            ..Default::default()
        };
        let e = estimate_skills(&obs, &cfg);
        assert_eq!(e.sweeps, 3);
    }

    #[test]
    fn empty_member_observation_ignored() {
        let obs = vec![
            TeamObservation::new(vec![], 0.9),
            TeamObservation::new(vec![w(1)], 0.7),
        ];
        let e = estimate_skills(&obs, &EstimatorConfig::default());
        assert!((e.skill(w(1)).unwrap() - 0.7).abs() < 1e-3);
    }
}
