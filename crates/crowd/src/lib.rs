//! # crowd4u-crowd — workers, human factors, affinity, and the simulated crowd
//!
//! The paper's worker manager keeps "user properties" (human factors) and
//! the "worker affinity matrix" (Figure 2). This crate provides:
//!
//! * [`profile`] — worker identities, languages, regions, skills, costs;
//! * [`affinity`] — dense and sparse symmetric affinity storage, profile-
//!   derived affinity synthesis, and the group-affinity objective;
//! * [`estimate`] — individual skill estimation from team task history
//!   (paper reference \[10\]);
//! * [`agent`] — stochastic worker agents (the stand-in for live
//!   volunteers: interest, commitment, latency, quality, dropout);
//! * [`population`] — seeded synthesis of diverse crowds.

pub mod affinity;
pub mod agent;
pub mod estimate;
pub mod population;
pub mod profile;

pub mod prelude {
    pub use crate::affinity::{
        affinity_from_profiles, group_affinity, AffinityLookup, AffinityMatrix, SparseAffinity,
    };
    pub use crate::agent::{Behavior, WorkerAgent};
    pub use crate::estimate::{estimate_skills, EstimatorConfig, SkillEstimate, TeamObservation};
    pub use crate::population::{generate, Population, PopulationConfig};
    pub use crate::profile::{HumanFactors, Lang, Region, WorkerId, WorkerProfile};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use proptest::prelude::*;

    proptest! {
        /// Dense and sparse affinity agree on arbitrary update sequences.
        #[test]
        fn dense_sparse_equivalence(
            ops in proptest::collection::vec((0u64..8, 0u64..8, 0.0f64..1.0), 0..60)
        ) {
            let ids: Vec<WorkerId> = (0..8).map(WorkerId).collect();
            let mut dense = AffinityMatrix::new(ids.clone());
            let mut sparse = SparseAffinity::new();
            for (a, b, v) in ops {
                dense.set(WorkerId(a), WorkerId(b), v);
                sparse.set(WorkerId(a), WorkerId(b), v);
            }
            for &a in &ids {
                for &b in &ids {
                    prop_assert!((dense.affinity(a, b) - sparse.affinity(a, b)).abs() < 1e-15);
                }
            }
        }

        /// Group affinity is permutation-invariant and bounded by [0,1].
        #[test]
        fn group_affinity_invariants(
            vals in proptest::collection::vec(0.0f64..1.0, 10),
            perm_seed in any::<u64>()
        ) {
            let ids: Vec<WorkerId> = (0..5).map(WorkerId).collect();
            let mut m = AffinityMatrix::new(ids.clone());
            let mut k = 0;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    m.set(ids[i], ids[j], vals[k]);
                    k += 1;
                }
            }
            let a1 = group_affinity(&m, &ids);
            let mut shuffled = ids.clone();
            let mut rng = crowd4u_sim::rng::SimRng::seed_from(perm_seed);
            rng.shuffle(&mut shuffled);
            let a2 = group_affinity(&m, &shuffled);
            prop_assert!((a1 - a2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&a1));
        }

        /// Skill estimation always stays within [0,1] and never diverges.
        #[test]
        fn estimation_bounded(
            obs in proptest::collection::vec(
                (proptest::collection::vec(0u64..6, 1..4), 0.0f64..1.0), 1..20)
        ) {
            let observations: Vec<TeamObservation> = obs
                .into_iter()
                .map(|(ws, q)| TeamObservation::new(
                    ws.into_iter().map(WorkerId).collect(), q))
                .collect();
            let e = estimate_skills(&observations, &EstimatorConfig::default());
            for s in e.skills.values() {
                prop_assert!((0.0..=1.0).contains(s));
            }
            prop_assert!(e.rmse.is_finite());
        }
    }
}
