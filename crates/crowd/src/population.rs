//! Synthetic crowd generation: seeded populations of worker agents with
//! realistic human-factor diversity, plus the derived affinity matrix.

use crate::affinity::{affinity_from_profiles, AffinityMatrix};
use crate::agent::{Behavior, WorkerAgent};
use crate::profile::{Region, WorkerId, WorkerProfile};
use crowd4u_sim::rng::SimRng;

/// Knobs for population synthesis.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    pub size: usize,
    /// Language pool: (code, probability a worker speaks it natively).
    pub languages: Vec<(String, f64)>,
    /// Probability of an extra fluent (non-native) language.
    pub second_lang_prob: f64,
    /// Named regions workers are placed in (uniformly).
    pub regions: Vec<Region>,
    /// Skill names; each worker gets each skill ~ clamped N(0.55, 0.2).
    pub skills: Vec<String>,
    /// Fractions of behaviour archetypes: (expert, flaky, unresponsive);
    /// the remainder get `Behavior::default()`.
    pub expert_frac: f64,
    pub flaky_frac: f64,
    pub unresponsive_frac: f64,
    /// First worker id to allocate.
    pub first_id: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 100,
            languages: vec![
                ("en".into(), 0.45),
                ("ja".into(), 0.30),
                ("fr".into(), 0.15),
                ("es".into(), 0.10),
            ],
            second_lang_prob: 0.35,
            regions: vec![
                Region::new("tsukuba", 0.82, 0.35),
                Region::new("tokyo", 0.80, 0.38),
                Region::new("grenoble", 0.18, 0.42),
                Region::new("arlington", 0.35, 0.65),
                Region::new("doha", 0.55, 0.55),
            ],
            skills: vec![
                "transcription".into(),
                "translation".into(),
                "journalism".into(),
                "surveillance".into(),
            ],
            expert_frac: 0.15,
            flaky_frac: 0.15,
            unresponsive_frac: 0.05,
            first_id: 1,
        }
    }
}

/// A generated crowd: agents plus their affinity matrix.
pub struct Population {
    pub agents: Vec<WorkerAgent>,
    pub affinity: AffinityMatrix,
}

impl Population {
    pub fn ids(&self) -> Vec<WorkerId> {
        self.agents.iter().map(|a| a.profile.id).collect()
    }

    pub fn agent(&self, id: WorkerId) -> Option<&WorkerAgent> {
        self.agents.iter().find(|a| a.profile.id == id)
    }

    pub fn agent_mut(&mut self, id: WorkerId) -> Option<&mut WorkerAgent> {
        self.agents.iter_mut().find(|a| a.profile.id == id)
    }

    pub fn profiles(&self) -> Vec<WorkerProfile> {
        self.agents.iter().map(|a| a.profile.clone()).collect()
    }
}

/// Generate a population deterministically from a seed.
pub fn generate(config: &PopulationConfig, rng: &mut SimRng) -> Population {
    let mut agents = Vec::with_capacity(config.size);
    for i in 0..config.size {
        let id = WorkerId(config.first_id + i as u64);
        let mut profile = WorkerProfile::new(id, format!("worker-{}", id.0));

        // Native language: weighted pick.
        let weights: Vec<f64> = config.languages.iter().map(|(_, p)| *p).collect();
        if let Some(li) = rng.weighted_index(&weights) {
            profile = profile.with_native_lang(config.languages[li].0.clone());
            // Maybe a second fluent language.
            if config.languages.len() > 1 && rng.chance(config.second_lang_prob) {
                let mut other = rng.index(config.languages.len());
                if other == li {
                    other = (other + 1) % config.languages.len();
                }
                profile = profile
                    .with_fluency(config.languages[other].0.clone(), rng.range_f64(0.5, 1.0));
            }
        }

        // Region with a little jitter around the centroid.
        if !config.regions.is_empty() {
            let r = rng.choose(&config.regions).clone();
            let jit = |rng: &mut SimRng, v: f64| (v + rng.normal(0.0, 0.02)).clamp(0.0, 1.0);
            let region = Region {
                x: jit(rng, r.x),
                y: jit(rng, r.y),
                name: r.name,
            };
            profile = profile.with_region(region);
        }

        // Skills.
        for s in &config.skills {
            profile = profile.with_skill(s.clone(), rng.normal_clamped(0.55, 0.2, 0.0, 1.0));
        }

        // Behaviour archetype.
        let roll = rng.unit();
        let behavior = if roll < config.expert_frac {
            Behavior::expert()
        } else if roll < config.expert_frac + config.flaky_frac {
            Behavior::flaky()
        } else if roll < config.expert_frac + config.flaky_frac + config.unresponsive_frac {
            Behavior::unresponsive()
        } else {
            Behavior::default()
        };

        let agent_rng = rng.fork(id.0);
        agents.push(WorkerAgent::new(profile, behavior, agent_rng));
    }

    let profiles: Vec<WorkerProfile> = agents.iter().map(|a| a.profile.clone()).collect();
    let affinity = affinity_from_profiles(&profiles, 1.0, 1.0, 0.5);
    Population { agents, affinity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityLookup;

    #[test]
    fn generation_is_deterministic() {
        let cfg = PopulationConfig {
            size: 30,
            ..Default::default()
        };
        let p1 = generate(&cfg, &mut SimRng::seed_from(42));
        let p2 = generate(&cfg, &mut SimRng::seed_from(42));
        assert_eq!(p1.profiles(), p2.profiles());
        let ids = p1.ids();
        for i in 0..ids.len().min(10) {
            for j in (i + 1)..ids.len().min(10) {
                assert_eq!(
                    p1.affinity.affinity(ids[i], ids[j]),
                    p2.affinity.affinity(ids[i], ids[j])
                );
            }
        }
    }

    #[test]
    fn population_has_requested_size_and_ids() {
        let cfg = PopulationConfig {
            size: 25,
            first_id: 100,
            ..Default::default()
        };
        let p = generate(&cfg, &mut SimRng::seed_from(1));
        assert_eq!(p.agents.len(), 25);
        assert_eq!(p.ids()[0], WorkerId(100));
        assert_eq!(p.ids()[24], WorkerId(124));
        assert!(p.agent(WorkerId(100)).is_some());
        assert!(p.agent(WorkerId(999)).is_none());
    }

    #[test]
    fn diversity_present() {
        let p = generate(
            &PopulationConfig {
                size: 200,
                ..Default::default()
            },
            &mut SimRng::seed_from(7),
        );
        let langs: std::collections::HashSet<String> = p
            .agents
            .iter()
            .flat_map(|a| a.profile.factors.native_langs.iter().map(|l| l.0.clone()))
            .collect();
        assert!(
            langs.len() >= 3,
            "expected ≥3 native languages, got {langs:?}"
        );
        let regions: std::collections::HashSet<String> = p
            .agents
            .iter()
            .map(|a| a.profile.factors.region.name.clone())
            .collect();
        assert!(regions.len() >= 4);
        // Behaviour mix: some experts (quality ~0.92) and some defaults.
        let high = p
            .agents
            .iter()
            .filter(|a| a.behavior.quality_mean > 0.9)
            .count();
        assert!(high > 10 && high < 80, "expert count {high}");
    }

    #[test]
    fn affinity_same_region_higher_on_average() {
        let p = generate(
            &PopulationConfig {
                size: 120,
                ..Default::default()
            },
            &mut SimRng::seed_from(3),
        );
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for (i, a) in p.agents.iter().enumerate() {
            for b in p.agents.iter().skip(i + 1) {
                let aff = p.affinity.affinity(a.profile.id, b.profile.id);
                if a.profile.factors.region.name == b.profile.factors.region.name {
                    same.push(aff);
                } else {
                    diff.push(aff);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&same) > mean(&diff),
            "same-region affinity {} should exceed cross-region {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn skills_assigned_for_all_names() {
        let p = generate(
            &PopulationConfig {
                size: 10,
                ..Default::default()
            },
            &mut SimRng::seed_from(5),
        );
        for a in &p.agents {
            for s in ["transcription", "translation", "journalism", "surveillance"] {
                let v = a.profile.factors.skill(s);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn empty_population() {
        let p = generate(
            &PopulationConfig {
                size: 0,
                ..Default::default()
            },
            &mut SimRng::seed_from(1),
        );
        assert!(p.agents.is_empty());
        assert!(p.ids().is_empty());
    }
}
