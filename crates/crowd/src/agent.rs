//! Stochastic worker agents — the substitute for live volunteers.
//!
//! The platform only ever observes a worker through a narrow protocol:
//! does she declare interest in a task (`InterestedIn`), does she start it
//! by the deadline (`Undertakes`), how long does she take, and what quality
//! does her contribution have. `WorkerAgent` models exactly those four
//! observables with a seeded RNG, so simulations are deterministic and the
//! platform code paths exercised are identical to production.

use crate::profile::WorkerProfile;
use crowd4u_sim::rng::SimRng;
use crowd4u_sim::time::SimDuration;

/// Behavioural parameters of a simulated worker.
#[derive(Debug, Clone)]
pub struct Behavior {
    /// Probability of declaring interest in an eligible task.
    pub interest_prob: f64,
    /// Probability of actually starting (undertaking) a task she was
    /// suggested for, before the deadline.
    pub commit_prob: f64,
    /// Mean response delay (exponentially distributed), in seconds.
    pub mean_response_secs: f64,
    /// Mean quality of produced work in `[0,1]`.
    pub quality_mean: f64,
    /// Standard deviation of produced quality.
    pub quality_std: f64,
    /// Probability of abandoning a task mid-way (failure injection).
    pub dropout_prob: f64,
}

impl Default for Behavior {
    fn default() -> Self {
        Behavior {
            interest_prob: 0.6,
            commit_prob: 0.85,
            mean_response_secs: 300.0,
            quality_mean: 0.7,
            quality_std: 0.12,
            dropout_prob: 0.02,
        }
    }
}

impl Behavior {
    /// A worker that never responds (failure injection).
    pub fn unresponsive() -> Behavior {
        Behavior {
            interest_prob: 0.0,
            commit_prob: 0.0,
            ..Default::default()
        }
    }

    /// An eager, reliable expert.
    pub fn expert() -> Behavior {
        Behavior {
            interest_prob: 0.9,
            commit_prob: 0.97,
            mean_response_secs: 120.0,
            quality_mean: 0.92,
            quality_std: 0.05,
            dropout_prob: 0.005,
        }
    }

    /// Interested but flaky: signs up, rarely delivers.
    pub fn flaky() -> Behavior {
        Behavior {
            interest_prob: 0.9,
            commit_prob: 0.25,
            dropout_prob: 0.3,
            ..Default::default()
        }
    }
}

/// A simulated worker: profile + behaviour + private RNG stream.
#[derive(Debug, Clone)]
pub struct WorkerAgent {
    pub profile: WorkerProfile,
    pub behavior: Behavior,
    rng: SimRng,
}

impl WorkerAgent {
    pub fn new(profile: WorkerProfile, behavior: Behavior, rng: SimRng) -> WorkerAgent {
        WorkerAgent {
            profile,
            behavior,
            rng,
        }
    }

    /// Does the worker declare interest when shown an eligible task?
    pub fn declares_interest(&mut self) -> bool {
        let p = self.behavior.interest_prob;
        self.rng.chance(p)
    }

    /// Does the worker actually start a suggested task before the deadline?
    pub fn commits(&mut self) -> bool {
        let p = self.behavior.commit_prob;
        self.rng.chance(p)
    }

    /// Does the worker abandon mid-task?
    pub fn drops_out(&mut self) -> bool {
        let p = self.behavior.dropout_prob;
        self.rng.chance(p)
    }

    /// How long until the worker reacts (exponential).
    pub fn response_delay(&mut self) -> SimDuration {
        let mean = self.behavior.mean_response_secs.max(1.0);
        SimDuration::secs(self.rng.exponential(mean).ceil() as u64)
    }

    /// Quality of a produced contribution for a task requiring `skill_name`.
    /// The worker's profile skill shifts the quality: an unskilled worker on
    /// a demanding task produces worse work than their base quality.
    pub fn produce_quality(&mut self, skill_name: Option<&str>) -> f64 {
        let base = self.behavior.quality_mean;
        let skill_bonus = match skill_name {
            Some(name) => 0.3 * (self.profile.factors.skill(name) - 0.5),
            None => 0.0,
        };

        self.rng
            .normal_clamped(base + skill_bonus, self.behavior.quality_std, 0.0, 1.0)
    }

    /// Mutable access to the private RNG stream (for scenario-specific
    /// content generation, e.g. picking a report topic).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{WorkerId, WorkerProfile};

    fn agent(behavior: Behavior, seed: u64) -> WorkerAgent {
        WorkerAgent::new(
            WorkerProfile::new(WorkerId(1), "a").with_skill("x", 0.9),
            behavior,
            SimRng::seed_from(seed),
        )
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = agent(Behavior::default(), 9);
        let mut b = agent(Behavior::default(), 9);
        for _ in 0..50 {
            assert_eq!(a.declares_interest(), b.declares_interest());
            assert_eq!(a.response_delay(), b.response_delay());
            assert_eq!(a.produce_quality(Some("x")), b.produce_quality(Some("x")));
        }
    }

    #[test]
    fn unresponsive_never_engages() {
        let mut a = agent(Behavior::unresponsive(), 3);
        for _ in 0..100 {
            assert!(!a.declares_interest());
            assert!(!a.commits());
        }
    }

    #[test]
    fn expert_beats_default_quality() {
        let mut e = agent(Behavior::expert(), 5);
        let mut d = agent(Behavior::default(), 5);
        let n = 2000;
        let qe: f64 = (0..n).map(|_| e.produce_quality(None)).sum::<f64>() / n as f64;
        let qd: f64 = (0..n).map(|_| d.produce_quality(None)).sum::<f64>() / n as f64;
        assert!(qe > qd + 0.1, "expert {qe} vs default {qd}");
    }

    #[test]
    fn skill_shifts_quality() {
        let skilled = WorkerProfile::new(WorkerId(1), "s").with_skill("t", 1.0);
        let unskilled = WorkerProfile::new(WorkerId(2), "u").with_skill("t", 0.0);
        let mut a = WorkerAgent::new(skilled, Behavior::default(), SimRng::seed_from(7));
        let mut b = WorkerAgent::new(unskilled, Behavior::default(), SimRng::seed_from(7));
        let n = 2000;
        let qa: f64 = (0..n).map(|_| a.produce_quality(Some("t"))).sum::<f64>() / n as f64;
        let qb: f64 = (0..n).map(|_| b.produce_quality(Some("t"))).sum::<f64>() / n as f64;
        assert!(qa > qb + 0.2, "skilled {qa} vs unskilled {qb}");
    }

    #[test]
    fn quality_bounded() {
        let mut a = agent(
            Behavior {
                quality_mean: 1.2,
                quality_std: 0.5,
                ..Default::default()
            },
            11,
        );
        for _ in 0..500 {
            let q = a.produce_quality(None);
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn response_delay_positive_and_near_mean() {
        let mut a = agent(Behavior::default(), 13);
        let n = 5000;
        let total: u64 = (0..n).map(|_| a.response_delay().ticks()).sum();
        let mean = total as f64 / n as f64;
        assert!(mean > 250.0 && mean < 350.0, "mean delay {mean}");
    }

    #[test]
    fn flaky_commits_rarely() {
        let mut a = agent(Behavior::flaky(), 17);
        let commits = (0..1000).filter(|_| a.commits()).count();
        assert!(commits < 350, "flaky committed {commits}/1000");
    }
}
