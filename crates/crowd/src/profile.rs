//! Worker profiles and human factors.
//!
//! Paper §2.4: "Figure 4 shows the set of human factors that can be updated
//! by each worker. Those factors are either provided by the worker when
//! creating an Crowd4U account (e.g., native languages, location) or
//! computed by the system based on previously performed tasks."

use std::collections::BTreeMap;
use std::fmt;

/// Unique worker identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u64);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A language tag (ISO-style short code, e.g. "en", "ja", "fr").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lang(pub String);

impl Lang {
    pub fn new(code: impl Into<String>) -> Lang {
        Lang(code.into())
    }

    pub fn code(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A geographic region: a name plus normalised coordinates in `[0,1]²`,
/// used for distance-based affinity in surveillance tasks ("if workers live
/// in the same geographic area, their affinity value is larger", §2.2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    pub name: String,
    pub x: f64,
    pub y: f64,
}

impl Region {
    pub fn new(name: impl Into<String>, x: f64, y: f64) -> Region {
        Region {
            name: name.into(),
            x,
            y,
        }
    }

    /// Euclidean distance between region centroids.
    pub fn distance(&self, other: &Region) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The user-editable and system-computed human factors of one worker.
#[derive(Debug, Clone, PartialEq)]
pub struct HumanFactors {
    /// Languages spoken natively.
    pub native_langs: Vec<Lang>,
    /// All languages with fluency in `[0,1]` (native ⇒ 1.0 by convention).
    pub fluency: BTreeMap<Lang, f64>,
    /// Where the worker lives.
    pub region: Region,
    /// Application-specific skills in `[0,1]` (e.g. "transcription",
    /// "journalism"), provided via qualification tests or estimated from
    /// task history (see [`crate::estimate`]).
    pub skills: BTreeMap<String, f64>,
    /// Whether the worker is currently logged in (an eligibility factor the
    /// paper calls out explicitly: "only workers who log in to Crowd4U…").
    pub logged_in: bool,
}

impl Default for HumanFactors {
    fn default() -> Self {
        HumanFactors {
            native_langs: Vec::new(),
            fluency: BTreeMap::new(),
            region: Region::new("unknown", 0.5, 0.5),
            skills: BTreeMap::new(),
            logged_in: true,
        }
    }
}

impl HumanFactors {
    /// Fluency in a language (native ⇒ 1.0; unknown ⇒ 0.0).
    pub fn fluency_in(&self, lang: &Lang) -> f64 {
        if self.native_langs.contains(lang) {
            return 1.0;
        }
        self.fluency.get(lang).copied().unwrap_or(0.0)
    }

    pub fn speaks_natively(&self, lang: &Lang) -> bool {
        self.native_langs.contains(lang)
    }

    /// Skill level in `[0,1]` (0.0 when unknown).
    pub fn skill(&self, name: &str) -> f64 {
        self.skills.get(name).copied().unwrap_or(0.0)
    }

    pub fn set_skill(&mut self, name: impl Into<String>, level: f64) {
        self.skills.insert(name.into(), level.clamp(0.0, 1.0));
    }
}

/// A complete worker record as kept by the worker manager.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerProfile {
    pub id: WorkerId,
    pub name: String,
    pub factors: HumanFactors,
    /// Per-task cost of engaging this worker. Crowd4U is volunteer-based so
    /// production cost is 0, but the assignment algorithms of Rahman et al.
    /// \[9\] include cost budgets, so the field is carried through.
    pub cost: f64,
}

impl WorkerProfile {
    pub fn new(id: WorkerId, name: impl Into<String>) -> WorkerProfile {
        WorkerProfile {
            id,
            name: name.into(),
            factors: HumanFactors::default(),
            cost: 0.0,
        }
    }

    pub fn with_native_lang(mut self, lang: impl Into<String>) -> WorkerProfile {
        let l = Lang::new(lang);
        self.factors.fluency.insert(l.clone(), 1.0);
        self.factors.native_langs.push(l);
        self
    }

    pub fn with_fluency(mut self, lang: impl Into<String>, level: f64) -> WorkerProfile {
        self.factors
            .fluency
            .insert(Lang::new(lang), level.clamp(0.0, 1.0));
        self
    }

    pub fn with_region(mut self, region: Region) -> WorkerProfile {
        self.factors.region = region;
        self
    }

    pub fn with_skill(mut self, name: impl Into<String>, level: f64) -> WorkerProfile {
        self.factors.set_skill(name, level);
        self
    }

    pub fn with_cost(mut self, cost: f64) -> WorkerProfile {
        self.cost = cost;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let w = WorkerProfile::new(WorkerId(1), "ann")
            .with_native_lang("en")
            .with_fluency("fr", 0.6)
            .with_region(Region::new("tokyo", 0.8, 0.2))
            .with_skill("journalism", 0.9)
            .with_cost(2.0);
        assert_eq!(w.id, WorkerId(1));
        assert!(w.factors.speaks_natively(&Lang::new("en")));
        assert_eq!(w.factors.fluency_in(&Lang::new("en")), 1.0);
        assert_eq!(w.factors.fluency_in(&Lang::new("fr")), 0.6);
        assert_eq!(w.factors.fluency_in(&Lang::new("zz")), 0.0);
        assert_eq!(w.factors.skill("journalism"), 0.9);
        assert_eq!(w.factors.skill("nothing"), 0.0);
        assert_eq!(w.cost, 2.0);
        assert_eq!(w.factors.region.name, "tokyo");
    }

    #[test]
    fn skills_clamped() {
        let mut f = HumanFactors::default();
        f.set_skill("x", 1.5);
        assert_eq!(f.skill("x"), 1.0);
        f.set_skill("x", -0.5);
        assert_eq!(f.skill("x"), 0.0);
        let w = WorkerProfile::new(WorkerId(1), "a").with_fluency("fr", 7.0);
        assert_eq!(w.factors.fluency_in(&Lang::new("fr")), 1.0);
    }

    #[test]
    fn region_distance() {
        let a = Region::new("a", 0.0, 0.0);
        let b = Region::new("b", 3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn default_factors() {
        let f = HumanFactors::default();
        assert!(f.logged_in);
        assert!(f.native_langs.is_empty());
        assert_eq!(f.region.name, "unknown");
    }

    #[test]
    fn display_forms() {
        assert_eq!(WorkerId(42).to_string(), "w42");
        assert_eq!(Lang::new("en").to_string(), "en");
        assert_eq!(Lang::new("en").code(), "en");
    }
}
