//! The worker-to-worker affinity matrix.
//!
//! Paper §2.2: "the worker affinity matrix … maintains the information on
//! how a pair of workers is expected to work well". Affinities are symmetric
//! values in `[0, 1]` over unordered worker pairs.
//!
//! Two representations are provided (DESIGN.md §5 ablation 2):
//! * [`AffinityMatrix`] — dense lower-triangular storage, O(1) lookup;
//! * [`SparseAffinity`] — hash-map storage for sparse populations.
//!
//! Both implement [`AffinityLookup`], the trait the assignment algorithms
//! consume.

use crate::profile::{WorkerId, WorkerProfile};
use std::collections::HashMap;

/// Read interface used by team-formation algorithms.
pub trait AffinityLookup {
    /// Symmetric affinity between two workers; 0.0 when unknown. The
    /// affinity of a worker with itself is defined as 0 (no self-pairs).
    fn affinity(&self, a: WorkerId, b: WorkerId) -> f64;
}

/// Dense symmetric affinity matrix over a fixed worker universe.
#[derive(Debug, Clone)]
pub struct AffinityMatrix {
    ids: Vec<WorkerId>,
    index: HashMap<WorkerId, usize>,
    /// Lower triangle, row-major: entry (i, j) with i > j at `i*(i-1)/2 + j`.
    tri: Vec<f64>,
}

impl AffinityMatrix {
    /// Create a zero matrix over the given workers.
    pub fn new(ids: Vec<WorkerId>) -> AffinityMatrix {
        let n = ids.len();
        let pairs = if n < 2 { 0 } else { n * (n - 1) / 2 };
        let index = ids
            .iter()
            .copied()
            .enumerate()
            .map(|(i, w)| (w, i))
            .collect();
        AffinityMatrix {
            ids,
            index,
            tri: vec![0.0; pairs],
        }
    }

    pub fn workers(&self) -> &[WorkerId] {
        &self.ids
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn slot(&self, a: WorkerId, b: WorkerId) -> Option<usize> {
        let (&i, &j) = (self.index.get(&a)?, self.index.get(&b)?);
        if i == j {
            return None;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        Some(hi * (hi - 1) / 2 + lo)
    }

    /// Set the symmetric affinity (clamped to `[0,1]`). Unknown workers or
    /// self-pairs are ignored.
    pub fn set(&mut self, a: WorkerId, b: WorkerId, value: f64) {
        if let Some(s) = self.slot(a, b) {
            self.tri[s] = value.clamp(0.0, 1.0);
        }
    }

    /// Mean affinity across all pairs (0.0 for < 2 workers).
    pub fn mean(&self) -> f64 {
        if self.tri.is_empty() {
            return 0.0;
        }
        self.tri.iter().sum::<f64>() / self.tri.len() as f64
    }
}

impl AffinityLookup for AffinityMatrix {
    fn affinity(&self, a: WorkerId, b: WorkerId) -> f64 {
        self.slot(a, b).map(|s| self.tri[s]).unwrap_or(0.0)
    }
}

/// Sparse affinity storage: only non-zero pairs are kept.
#[derive(Debug, Clone, Default)]
pub struct SparseAffinity {
    map: HashMap<(WorkerId, WorkerId), f64>,
}

impl SparseAffinity {
    pub fn new() -> SparseAffinity {
        SparseAffinity::default()
    }

    fn key(a: WorkerId, b: WorkerId) -> (WorkerId, WorkerId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    pub fn set(&mut self, a: WorkerId, b: WorkerId, value: f64) {
        if a == b {
            return;
        }
        let v = value.clamp(0.0, 1.0);
        if v == 0.0 {
            self.map.remove(&Self::key(a, b));
        } else {
            self.map.insert(Self::key(a, b), v);
        }
    }

    pub fn pair_count(&self) -> usize {
        self.map.len()
    }
}

impl AffinityLookup for SparseAffinity {
    fn affinity(&self, a: WorkerId, b: WorkerId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.map.get(&Self::key(a, b)).copied().unwrap_or(0.0)
    }
}

/// Derive an affinity matrix from worker profiles, combining:
/// * geographic proximity (closer ⇒ higher), weight `w_geo`;
/// * language overlap (shared fluent languages), weight `w_lang`;
/// * skill-profile similarity, weight `w_skill`.
///
/// Weights are renormalised to sum to 1.
pub fn affinity_from_profiles(
    workers: &[WorkerProfile],
    w_geo: f64,
    w_lang: f64,
    w_skill: f64,
) -> AffinityMatrix {
    let refs: Vec<&WorkerProfile> = workers.iter().collect();
    affinity_from_profile_refs(&refs, w_geo, w_lang, w_skill)
}

/// [`affinity_from_profiles`] over borrowed profiles — the entry point
/// for computing a *submatrix* (e.g. an assignment's candidate set)
/// without cloning profiles or touching the rest of the population. Pair
/// affinity is a pure function of the two profiles and the weights, so a
/// submatrix entry is bit-identical to the full matrix's.
pub fn affinity_from_profile_refs(
    workers: &[&WorkerProfile],
    w_geo: f64,
    w_lang: f64,
    w_skill: f64,
) -> AffinityMatrix {
    let total = (w_geo + w_lang + w_skill).max(f64::MIN_POSITIVE);
    let (wg, wl, ws) = (w_geo / total, w_lang / total, w_skill / total);
    let mut m = AffinityMatrix::new(workers.iter().map(|w| w.id).collect());
    // The pair loop is O(n²) and runs over the full registered population
    // of a platform slice — hoist every per-worker feature (fluent
    // languages, skill names) out of it so the inner body allocates only
    // one reusable scratch buffer. Same arithmetic, same iteration
    // orders, bit-identical affinities.
    let fluent: Vec<Vec<&str>> = workers
        .iter()
        .map(|w| {
            w.factors
                .fluency
                .iter()
                .filter(|(_, &f)| f >= 0.5)
                .map(|(l, _)| l.code())
                .collect()
        })
        .collect();
    let skill_names: Vec<Vec<&str>> = workers
        .iter()
        .map(|w| w.factors.skills.keys().map(String::as_str).collect())
        .collect();
    let mut names: Vec<&str> = Vec::new();
    for (i, a) in workers.iter().enumerate() {
        for (j, b) in workers.iter().enumerate().skip(i + 1) {
            // Geography: map distance in [0, sqrt(2)] to closeness in [0,1].
            let d = a.factors.region.distance(&b.factors.region);
            let geo = (1.0 - d / std::f64::consts::SQRT_2).clamp(0.0, 1.0);
            // Language: Jaccard over languages with fluency ≥ 0.5.
            let (la, lb) = (&fluent[i], &fluent[j]);
            let inter = la.iter().filter(|l| lb.contains(l)).count();
            let union = la.len() + lb.len() - inter;
            let lang = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            // Skills: 1 - mean |Δ| over the union of named skills.
            names.clear();
            names.extend_from_slice(&skill_names[i]);
            for k in &skill_names[j] {
                if !names.contains(k) {
                    names.push(k);
                }
            }
            let skill = if names.is_empty() {
                0.0
            } else {
                let diff: f64 = names
                    .iter()
                    .map(|n| (a.factors.skill(n) - b.factors.skill(n)).abs())
                    .sum::<f64>()
                    / names.len() as f64;
                1.0 - diff
            };
            // Write the lower-triangle slot directly — ids arrived in
            // matrix order, so the position is arithmetic, not a hash
            // lookup per pair.
            m.tri[j * (j - 1) / 2 + i] = wg * geo + wl * lang + ws * skill;
        }
    }
    m
}

/// Mean pairwise affinity of a group (the objective the team-formation
/// algorithms maximise). Groups of size < 2 have affinity 0.
pub fn group_affinity(aff: &dyn AffinityLookup, group: &[WorkerId]) -> f64 {
    let n = group.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += aff.affinity(group[i], group[j]);
        }
    }
    total / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Region;

    fn ids(n: u64) -> Vec<WorkerId> {
        (0..n).map(WorkerId).collect()
    }

    #[test]
    fn dense_set_get_symmetric() {
        let mut m = AffinityMatrix::new(ids(4));
        m.set(WorkerId(0), WorkerId(3), 0.7);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(3)), 0.7);
        assert_eq!(m.affinity(WorkerId(3), WorkerId(0)), 0.7);
        assert_eq!(m.affinity(WorkerId(1), WorkerId(2)), 0.0);
        assert_eq!(m.affinity(WorkerId(1), WorkerId(1)), 0.0);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
    }

    #[test]
    fn dense_unknown_workers_ignored() {
        let mut m = AffinityMatrix::new(ids(2));
        m.set(WorkerId(0), WorkerId(99), 0.5);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(99)), 0.0);
    }

    #[test]
    fn dense_clamps_and_means() {
        let mut m = AffinityMatrix::new(ids(3));
        m.set(WorkerId(0), WorkerId(1), 2.0);
        m.set(WorkerId(0), WorkerId(2), -1.0);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(1)), 1.0);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(2)), 0.0);
        assert!((m.mean() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(AffinityMatrix::new(vec![]).mean(), 0.0);
    }

    #[test]
    fn sparse_matches_dense_behaviour() {
        let mut s = SparseAffinity::new();
        s.set(WorkerId(2), WorkerId(1), 0.4);
        assert_eq!(s.affinity(WorkerId(1), WorkerId(2)), 0.4);
        assert_eq!(s.affinity(WorkerId(2), WorkerId(1)), 0.4);
        assert_eq!(s.affinity(WorkerId(1), WorkerId(1)), 0.0);
        assert_eq!(s.pair_count(), 1);
        s.set(WorkerId(1), WorkerId(1), 0.9); // self-pair ignored
        assert_eq!(s.pair_count(), 1);
        s.set(WorkerId(2), WorkerId(1), 0.0); // zero removes
        assert_eq!(s.pair_count(), 0);
    }

    #[test]
    fn group_affinity_means_pairs() {
        let mut m = AffinityMatrix::new(ids(3));
        m.set(WorkerId(0), WorkerId(1), 0.6);
        m.set(WorkerId(0), WorkerId(2), 0.0);
        m.set(WorkerId(1), WorkerId(2), 0.3);
        let g = [WorkerId(0), WorkerId(1), WorkerId(2)];
        assert!((group_affinity(&m, &g) - 0.3).abs() < 1e-12);
        assert_eq!(group_affinity(&m, &[WorkerId(0)]), 0.0);
        assert_eq!(group_affinity(&m, &[]), 0.0);
    }

    #[test]
    fn profile_affinity_same_region_and_lang_is_high() {
        let a = WorkerProfile::new(WorkerId(1), "a")
            .with_native_lang("ja")
            .with_region(Region::new("tsukuba", 0.5, 0.5))
            .with_skill("survey", 0.8);
        let b = WorkerProfile::new(WorkerId(2), "b")
            .with_native_lang("ja")
            .with_region(Region::new("tsukuba", 0.5, 0.5))
            .with_skill("survey", 0.8);
        let c = WorkerProfile::new(WorkerId(3), "c")
            .with_native_lang("fr")
            .with_region(Region::new("grenoble", 0.0, 1.0))
            .with_skill("survey", 0.1);
        let m = affinity_from_profiles(&[a, b, c], 1.0, 1.0, 1.0);
        let near = m.affinity(WorkerId(1), WorkerId(2));
        let far = m.affinity(WorkerId(1), WorkerId(3));
        assert!(near > far, "same region/lang/skill must beat different");
        assert!(near > 0.9);
        assert!((0.0..=1.0).contains(&far));
    }

    #[test]
    fn profile_affinity_weights_normalised() {
        let a = WorkerProfile::new(WorkerId(1), "a").with_native_lang("en");
        let b = WorkerProfile::new(WorkerId(2), "b").with_native_lang("en");
        // Only language weight: identical language sets ⇒ affinity 1.
        let m = affinity_from_profiles(&[a.clone(), b.clone()], 0.0, 5.0, 0.0);
        assert!((m.affinity(WorkerId(1), WorkerId(2)) - 1.0).abs() < 1e-12);
        // No fluent languages at all ⇒ language component 0.
        let c = WorkerProfile::new(WorkerId(3), "c");
        let d = WorkerProfile::new(WorkerId(4), "d");
        let m = affinity_from_profiles(&[c, d], 0.0, 1.0, 0.0);
        assert_eq!(m.affinity(WorkerId(3), WorkerId(4)), 0.0);
    }
}
