//! The worker-to-worker affinity matrix.
//!
//! Paper §2.2: "the worker affinity matrix … maintains the information on
//! how a pair of workers is expected to work well". Affinities are symmetric
//! values in `[0, 1]` over unordered worker pairs.
//!
//! Three representations are provided (DESIGN.md §5 ablation 2):
//! * [`AffinityMatrix`] — dense lower-triangular storage, O(1) lookup;
//! * [`SparseAffinity`] — hash-map storage for sparse populations;
//! * [`AffinityProvider`] — *lazy* computation from profiles with an
//!   optional above-floor / top-k per-worker cache, so a million-worker
//!   population never materialises O(n²) state.
//!
//! The first two implement [`AffinityLookup`], the trait the assignment
//! algorithms consume; the provider produces dense candidate-set
//! *submatrices* on demand (bit-identical to the full matrix's entries)
//! and answers single-pair queries directly.

use crate::profile::{WorkerId, WorkerProfile};
use std::collections::HashMap;

/// Read interface used by team-formation algorithms.
pub trait AffinityLookup {
    /// Symmetric affinity between two workers; 0.0 when unknown. The
    /// affinity of a worker with itself is defined as 0 (no self-pairs).
    fn affinity(&self, a: WorkerId, b: WorkerId) -> f64;
}

/// Dense symmetric affinity matrix over a fixed worker universe.
#[derive(Debug, Clone)]
pub struct AffinityMatrix {
    ids: Vec<WorkerId>,
    index: HashMap<WorkerId, usize>,
    /// Lower triangle, row-major: entry (i, j) with i > j at `i*(i-1)/2 + j`.
    tri: Vec<f64>,
}

impl AffinityMatrix {
    /// Create a zero matrix over the given workers.
    pub fn new(ids: Vec<WorkerId>) -> AffinityMatrix {
        let n = ids.len();
        let pairs = if n < 2 { 0 } else { n * (n - 1) / 2 };
        let index = ids
            .iter()
            .copied()
            .enumerate()
            .map(|(i, w)| (w, i))
            .collect();
        AffinityMatrix {
            ids,
            index,
            tri: vec![0.0; pairs],
        }
    }

    pub fn workers(&self) -> &[WorkerId] {
        &self.ids
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn slot(&self, a: WorkerId, b: WorkerId) -> Option<usize> {
        let (&i, &j) = (self.index.get(&a)?, self.index.get(&b)?);
        if i == j {
            return None;
        }
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        Some(hi * (hi - 1) / 2 + lo)
    }

    /// Set the symmetric affinity (clamped to `[0,1]`). Unknown workers or
    /// self-pairs are ignored.
    pub fn set(&mut self, a: WorkerId, b: WorkerId, value: f64) {
        if let Some(s) = self.slot(a, b) {
            self.tri[s] = value.clamp(0.0, 1.0);
        }
    }

    /// Mean affinity across all pairs (0.0 for < 2 workers).
    pub fn mean(&self) -> f64 {
        if self.tri.is_empty() {
            return 0.0;
        }
        self.tri.iter().sum::<f64>() / self.tri.len() as f64
    }
}

impl AffinityLookup for AffinityMatrix {
    fn affinity(&self, a: WorkerId, b: WorkerId) -> f64 {
        self.slot(a, b).map(|s| self.tri[s]).unwrap_or(0.0)
    }
}

/// Sparse affinity storage: only non-zero pairs are kept.
#[derive(Debug, Clone, Default)]
pub struct SparseAffinity {
    map: HashMap<(WorkerId, WorkerId), f64>,
}

impl SparseAffinity {
    pub fn new() -> SparseAffinity {
        SparseAffinity::default()
    }

    fn key(a: WorkerId, b: WorkerId) -> (WorkerId, WorkerId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    pub fn set(&mut self, a: WorkerId, b: WorkerId, value: f64) {
        if a == b {
            return;
        }
        let v = value.clamp(0.0, 1.0);
        if v == 0.0 {
            self.map.remove(&Self::key(a, b));
        } else {
            self.map.insert(Self::key(a, b), v);
        }
    }

    pub fn pair_count(&self) -> usize {
        self.map.len()
    }
}

impl AffinityLookup for SparseAffinity {
    fn affinity(&self, a: WorkerId, b: WorkerId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.map.get(&Self::key(a, b)).copied().unwrap_or(0.0)
    }
}

/// Derive an affinity matrix from worker profiles, combining:
/// * geographic proximity (closer ⇒ higher), weight `w_geo`;
/// * language overlap (shared fluent languages), weight `w_lang`;
/// * skill-profile similarity, weight `w_skill`.
///
/// Weights are renormalised to sum to 1.
pub fn affinity_from_profiles(
    workers: &[WorkerProfile],
    w_geo: f64,
    w_lang: f64,
    w_skill: f64,
) -> AffinityMatrix {
    let refs: Vec<&WorkerProfile> = workers.iter().collect();
    affinity_from_profile_refs(&refs, w_geo, w_lang, w_skill)
}

/// [`affinity_from_profiles`] over borrowed profiles — the entry point
/// for computing a *submatrix* (e.g. an assignment's candidate set)
/// without cloning profiles or touching the rest of the population. Pair
/// affinity is a pure function of the two profiles and the weights, so a
/// submatrix entry is bit-identical to the full matrix's.
pub fn affinity_from_profile_refs(
    workers: &[&WorkerProfile],
    w_geo: f64,
    w_lang: f64,
    w_skill: f64,
) -> AffinityMatrix {
    let (wg, wl, ws) = normalised_weights(w_geo, w_lang, w_skill);
    let mut m = AffinityMatrix::new(workers.iter().map(|w| w.id).collect());
    // The pair loop is O(n²) and runs over the full registered population
    // of a platform slice — hoist every per-worker feature (fluent
    // languages, skill names) out of it so the inner body allocates only
    // one reusable scratch buffer. Same arithmetic, same iteration
    // orders, bit-identical affinities.
    let fluent: Vec<Vec<&str>> = workers.iter().map(|w| fluent_langs(w)).collect();
    let skill_names: Vec<Vec<&str>> = workers.iter().map(|w| skill_name_list(w)).collect();
    let mut names: Vec<&str> = Vec::new();
    for (i, a) in workers.iter().enumerate() {
        for (j, b) in workers.iter().enumerate().skip(i + 1) {
            // Write the lower-triangle slot directly — ids arrived in
            // matrix order, so the position is arithmetic, not a hash
            // lookup per pair.
            m.tri[j * (j - 1) / 2 + i] = pair_value(
                a,
                b,
                &fluent[i],
                &fluent[j],
                &skill_names[i],
                &skill_names[j],
                &mut names,
                wg,
                wl,
                ws,
            );
        }
    }
    m
}

fn normalised_weights(w_geo: f64, w_lang: f64, w_skill: f64) -> (f64, f64, f64) {
    let total = (w_geo + w_lang + w_skill).max(f64::MIN_POSITIVE);
    (w_geo / total, w_lang / total, w_skill / total)
}

/// Languages a worker is fluent in (fluency ≥ 0.5), in profile map order.
fn fluent_langs(w: &WorkerProfile) -> Vec<&str> {
    w.factors
        .fluency
        .iter()
        .filter(|(_, &f)| f >= 0.5)
        .map(|(l, _)| l.code())
        .collect()
}

fn skill_name_list(w: &WorkerProfile) -> Vec<&str> {
    w.factors.skills.keys().map(String::as_str).collect()
}

/// The single-pair affinity body shared by the matrix builder and the lazy
/// provider. Callers pass the hoisted per-worker features; `names` is a
/// reusable scratch buffer. The arithmetic here is the *only* place a pair
/// affinity is computed, which is what makes the lazy path bit-identical
/// to the dense one by construction.
#[allow(clippy::too_many_arguments)]
fn pair_value<'p>(
    a: &WorkerProfile,
    b: &WorkerProfile,
    la: &[&str],
    lb: &[&str],
    sa: &[&'p str],
    sb: &[&'p str],
    names: &mut Vec<&'p str>,
    wg: f64,
    wl: f64,
    ws: f64,
) -> f64 {
    // Geography: map distance in [0, sqrt(2)] to closeness in [0,1].
    let d = a.factors.region.distance(&b.factors.region);
    let geo = (1.0 - d / std::f64::consts::SQRT_2).clamp(0.0, 1.0);
    // Language: Jaccard over languages with fluency ≥ 0.5.
    let inter = la.iter().filter(|l| lb.contains(l)).count();
    let union = la.len() + lb.len() - inter;
    let lang = if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    };
    // Skills: 1 - mean |Δ| over the union of named skills.
    names.clear();
    names.extend_from_slice(sa);
    for k in sb {
        if !names.contains(k) {
            names.push(k);
        }
    }
    let skill = if names.is_empty() {
        0.0
    } else {
        let diff: f64 = names
            .iter()
            .map(|n| (a.factors.skill(n) - b.factors.skill(n)).abs())
            .sum::<f64>()
            / names.len() as f64;
        1.0 - diff
    };
    wg * geo + wl * lang + ws * skill
}

/// Affinity of a single worker pair, computed directly from the two
/// profiles. Arguments are canonicalised by worker id (smaller id first)
/// so the value is bit-identical to the entry a full-population
/// [`affinity_from_profiles`] matrix built in ascending-id order would
/// hold — the skill-union sum is order-sensitive in the last ulp, and the
/// dense builder always visits the smaller matrix index first.
pub fn pair_affinity_of(
    a: &WorkerProfile,
    b: &WorkerProfile,
    w_geo: f64,
    w_lang: f64,
    w_skill: f64,
) -> f64 {
    if a.id == b.id {
        return 0.0;
    }
    let (a, b) = if a.id <= b.id { (a, b) } else { (b, a) };
    let (wg, wl, ws) = normalised_weights(w_geo, w_lang, w_skill);
    let (la, lb) = (fluent_langs(a), fluent_langs(b));
    let (sa, sb) = (skill_name_list(a), skill_name_list(b));
    let mut names = Vec::new();
    pair_value(a, b, &la, &lb, &sa, &sb, &mut names, wg, wl, ws)
}

/// Lazy affinity source for large populations: pair values are computed
/// from profiles on demand, and only pairs at or above a configurable
/// floor are cached, at most `top_k` per worker. Registering worker N
/// against a provider costs O(1) — there is no dense state to invalidate —
/// and resident affinity state is bounded by `2 · top_k · n` entries
/// instead of `n²/2`.
///
/// The cache is strictly an accelerator: a miss (including a pair that was
/// evicted or fell below the floor) recomputes from the profiles, so every
/// value returned is bit-identical to [`affinity_from_profiles`] over the
/// ascending-id population regardless of the cache policy.
#[derive(Debug, Clone)]
pub struct AffinityProvider {
    weights: (f64, f64, f64),
    /// Only pairs with affinity ≥ `floor` are cached.
    floor: f64,
    /// Per-worker cap on cached partners (0 = unbounded). When a worker's
    /// list overflows, its *smallest* cached pair is evicted, so every
    /// value kept is ≥ every value dropped for that worker.
    top_k: usize,
    cache: HashMap<WorkerId, Vec<(WorkerId, f64)>>,
    entries: usize,
}

impl AffinityProvider {
    pub fn new(w_geo: f64, w_lang: f64, w_skill: f64) -> AffinityProvider {
        AffinityProvider {
            weights: (w_geo, w_lang, w_skill),
            floor: 0.0,
            top_k: 0,
            cache: HashMap::new(),
            entries: 0,
        }
    }

    pub fn weights(&self) -> (f64, f64, f64) {
        self.weights
    }

    /// Replace the synthesis weights; the cache (computed under the old
    /// weights) is dropped.
    pub fn set_weights(&mut self, w_geo: f64, w_lang: f64, w_skill: f64) {
        if self.weights != (w_geo, w_lang, w_skill) {
            self.weights = (w_geo, w_lang, w_skill);
            self.clear();
        }
    }

    /// Configure the cache: keep only pairs ≥ `floor`, at most `top_k`
    /// per worker (0 = unbounded). Drops anything already cached.
    pub fn set_cache_policy(&mut self, floor: f64, top_k: usize) {
        self.floor = floor;
        self.top_k = top_k;
        self.clear();
    }

    pub fn floor(&self) -> f64 {
        self.floor
    }

    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Total cached adjacency entries (each cached pair is stored under
    /// both endpoints, so this is ≤ `2 · top_k · workers` when bounded).
    /// This is the provider's entire resident affinity state.
    pub fn cached_entries(&self) -> usize {
        self.entries
    }

    /// Cached partners of one worker (test / introspection hook).
    pub fn cached_for(&self, w: WorkerId) -> &[(WorkerId, f64)] {
        self.cache.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn clear(&mut self) {
        self.cache.clear();
        self.entries = 0;
    }

    /// Affinity of a worker pair: cache hit, else compute (and cache when
    /// the value clears the floor). Self-pairs are 0 by definition.
    pub fn pair(&mut self, a: &WorkerProfile, b: &WorkerProfile) -> f64 {
        if a.id == b.id {
            return 0.0;
        }
        if let Some(v) = self.lookup(a.id, b.id) {
            return v;
        }
        let (wg, wl, ws) = self.weights;
        let v = pair_affinity_of(a, b, wg, wl, ws);
        if v >= self.floor {
            self.insert(a.id, b.id, v);
            self.insert(b.id, a.id, v);
        }
        v
    }

    /// Dense matrix over a candidate set, in candidate order — what the
    /// assignment algorithms consume. Pure profile computation (the pair
    /// cache is not consulted: a k-candidate submatrix is O(k²) anyway).
    pub fn submatrix(&self, profiles: &[&WorkerProfile]) -> AffinityMatrix {
        let (wg, wl, ws) = self.weights;
        affinity_from_profile_refs(profiles, wg, wl, ws)
    }

    fn lookup(&self, a: WorkerId, b: WorkerId) -> Option<f64> {
        // A pair is stored under both endpoints but may have been evicted
        // from one side's list; check both before recomputing.
        for (x, y) in [(a, b), (b, a)] {
            if let Some(list) = self.cache.get(&x) {
                if let Some(&(_, v)) = list.iter().find(|(o, _)| *o == y) {
                    return Some(v);
                }
            }
        }
        None
    }

    fn insert(&mut self, under: WorkerId, other: WorkerId, v: f64) {
        let list = self.cache.entry(under).or_default();
        list.push((other, v));
        self.entries += 1;
        if self.top_k > 0 && list.len() > self.top_k {
            // Evict the smallest cached pair for this worker, so the list
            // always holds its top-k-by-value partners seen so far.
            let (mi, _) = list
                .iter()
                .enumerate()
                .min_by(|(_, (_, x)), (_, (_, y))| x.total_cmp(y))
                .expect("list is non-empty");
            list.swap_remove(mi);
            self.entries -= 1;
        }
    }
}

/// Mean pairwise affinity of a group (the objective the team-formation
/// algorithms maximise). Groups of size < 2 have affinity 0.
pub fn group_affinity(aff: &dyn AffinityLookup, group: &[WorkerId]) -> f64 {
    let n = group.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += aff.affinity(group[i], group[j]);
        }
    }
    total / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Region;

    fn ids(n: u64) -> Vec<WorkerId> {
        (0..n).map(WorkerId).collect()
    }

    #[test]
    fn dense_set_get_symmetric() {
        let mut m = AffinityMatrix::new(ids(4));
        m.set(WorkerId(0), WorkerId(3), 0.7);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(3)), 0.7);
        assert_eq!(m.affinity(WorkerId(3), WorkerId(0)), 0.7);
        assert_eq!(m.affinity(WorkerId(1), WorkerId(2)), 0.0);
        assert_eq!(m.affinity(WorkerId(1), WorkerId(1)), 0.0);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
    }

    #[test]
    fn dense_unknown_workers_ignored() {
        let mut m = AffinityMatrix::new(ids(2));
        m.set(WorkerId(0), WorkerId(99), 0.5);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(99)), 0.0);
    }

    #[test]
    fn dense_clamps_and_means() {
        let mut m = AffinityMatrix::new(ids(3));
        m.set(WorkerId(0), WorkerId(1), 2.0);
        m.set(WorkerId(0), WorkerId(2), -1.0);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(1)), 1.0);
        assert_eq!(m.affinity(WorkerId(0), WorkerId(2)), 0.0);
        assert!((m.mean() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(AffinityMatrix::new(vec![]).mean(), 0.0);
    }

    #[test]
    fn sparse_matches_dense_behaviour() {
        let mut s = SparseAffinity::new();
        s.set(WorkerId(2), WorkerId(1), 0.4);
        assert_eq!(s.affinity(WorkerId(1), WorkerId(2)), 0.4);
        assert_eq!(s.affinity(WorkerId(2), WorkerId(1)), 0.4);
        assert_eq!(s.affinity(WorkerId(1), WorkerId(1)), 0.0);
        assert_eq!(s.pair_count(), 1);
        s.set(WorkerId(1), WorkerId(1), 0.9); // self-pair ignored
        assert_eq!(s.pair_count(), 1);
        s.set(WorkerId(2), WorkerId(1), 0.0); // zero removes
        assert_eq!(s.pair_count(), 0);
    }

    #[test]
    fn group_affinity_means_pairs() {
        let mut m = AffinityMatrix::new(ids(3));
        m.set(WorkerId(0), WorkerId(1), 0.6);
        m.set(WorkerId(0), WorkerId(2), 0.0);
        m.set(WorkerId(1), WorkerId(2), 0.3);
        let g = [WorkerId(0), WorkerId(1), WorkerId(2)];
        assert!((group_affinity(&m, &g) - 0.3).abs() < 1e-12);
        assert_eq!(group_affinity(&m, &[WorkerId(0)]), 0.0);
        assert_eq!(group_affinity(&m, &[]), 0.0);
    }

    #[test]
    fn profile_affinity_same_region_and_lang_is_high() {
        let a = WorkerProfile::new(WorkerId(1), "a")
            .with_native_lang("ja")
            .with_region(Region::new("tsukuba", 0.5, 0.5))
            .with_skill("survey", 0.8);
        let b = WorkerProfile::new(WorkerId(2), "b")
            .with_native_lang("ja")
            .with_region(Region::new("tsukuba", 0.5, 0.5))
            .with_skill("survey", 0.8);
        let c = WorkerProfile::new(WorkerId(3), "c")
            .with_native_lang("fr")
            .with_region(Region::new("grenoble", 0.0, 1.0))
            .with_skill("survey", 0.1);
        let m = affinity_from_profiles(&[a, b, c], 1.0, 1.0, 1.0);
        let near = m.affinity(WorkerId(1), WorkerId(2));
        let far = m.affinity(WorkerId(1), WorkerId(3));
        assert!(near > far, "same region/lang/skill must beat different");
        assert!(near > 0.9);
        assert!((0.0..=1.0).contains(&far));
    }

    fn crew(n: u64) -> Vec<WorkerProfile> {
        (1..=n)
            .map(|i| {
                WorkerProfile::new(WorkerId(i), format!("w{i}"))
                    .with_native_lang(if i % 2 == 0 { "en" } else { "ja" })
                    .with_region(Region::new("r", (i as f64) / (n as f64), 0.3))
                    .with_skill("survey", (i as f64) / (n as f64))
                    .with_skill(if i % 3 == 0 { "edit" } else { "translate" }, 0.4)
            })
            .collect()
    }

    #[test]
    fn pair_affinity_of_matches_dense_matrix_bitwise() {
        let workers = crew(7);
        let m = affinity_from_profiles(&workers, 1.0, 1.0, 0.5);
        for a in &workers {
            for b in &workers {
                let lazy = pair_affinity_of(a, b, 1.0, 1.0, 0.5);
                let dense = m.affinity(a.id, b.id);
                assert_eq!(
                    lazy.to_bits(),
                    dense.to_bits(),
                    "pair ({:?}, {:?}): lazy {lazy} != dense {dense}",
                    a.id,
                    b.id
                );
            }
        }
    }

    #[test]
    fn provider_caches_above_floor_only() {
        let workers = crew(6);
        let mut p = AffinityProvider::new(1.0, 1.0, 0.5);
        p.set_cache_policy(0.6, 0);
        let m = affinity_from_profiles(&workers, 1.0, 1.0, 0.5);
        for a in &workers {
            for b in &workers {
                assert_eq!(
                    p.pair(a, b).to_bits(),
                    m.affinity(a.id, b.id).to_bits(),
                    "provider value must match dense regardless of policy"
                );
            }
        }
        assert!(p.cached_entries() > 0, "some pairs clear a 0.6 floor");
        for w in &workers {
            for &(_, v) in p.cached_for(w.id) {
                assert!(v >= 0.6, "cached value {v} below the floor");
            }
        }
        // Below-floor pairs still answer exactly — they are just not resident.
        p.clear();
        assert_eq!(p.cached_entries(), 0);
    }

    #[test]
    fn provider_top_k_keeps_the_largest_pairs() {
        let workers = crew(12);
        let mut p = AffinityProvider::new(1.0, 1.0, 0.5);
        p.set_cache_policy(0.0, 3);
        let m = affinity_from_profiles(&workers, 1.0, 1.0, 0.5);
        for a in &workers {
            for b in &workers {
                assert_eq!(p.pair(a, b).to_bits(), m.affinity(a.id, b.id).to_bits());
            }
        }
        assert!(p.cached_entries() <= 2 * 3 * workers.len());
        let a = &workers[0];
        let kept = p.cached_for(a.id);
        assert!(kept.len() <= 3);
        // Every kept value is ≥ every evicted value: the list's minimum
        // dominates all partners outside it.
        let kept_min = kept.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        let mut below = 0;
        for b in &workers[1..] {
            if m.affinity(a.id, b.id) < kept_min {
                below += 1;
            }
        }
        assert_eq!(
            below,
            workers.len() - 1 - kept.len(),
            "exactly the non-kept partners fall below the kept minimum"
        );
    }

    #[test]
    fn provider_submatrix_matches_refs_path() {
        let workers = crew(5);
        let p = AffinityProvider::new(1.0, 1.0, 0.5);
        let refs: Vec<&WorkerProfile> = workers.iter().collect();
        let sub = p.submatrix(&refs);
        let full = affinity_from_profiles(&workers, 1.0, 1.0, 0.5);
        for a in &workers {
            for b in &workers {
                assert_eq!(
                    sub.affinity(a.id, b.id).to_bits(),
                    full.affinity(a.id, b.id).to_bits()
                );
            }
        }
    }

    #[test]
    fn provider_weight_change_drops_cache() {
        let workers = crew(4);
        let mut p = AffinityProvider::new(1.0, 1.0, 0.5);
        p.pair(&workers[0], &workers[1]);
        assert!(p.cached_entries() > 0);
        p.set_weights(1.0, 0.0, 0.0);
        assert_eq!(p.cached_entries(), 0);
        let v = p.pair(&workers[0], &workers[1]);
        assert_eq!(
            v.to_bits(),
            pair_affinity_of(&workers[0], &workers[1], 1.0, 0.0, 0.0).to_bits()
        );
    }

    #[test]
    fn profile_affinity_weights_normalised() {
        let a = WorkerProfile::new(WorkerId(1), "a").with_native_lang("en");
        let b = WorkerProfile::new(WorkerId(2), "b").with_native_lang("en");
        // Only language weight: identical language sets ⇒ affinity 1.
        let m = affinity_from_profiles(&[a.clone(), b.clone()], 0.0, 5.0, 0.0);
        assert!((m.affinity(WorkerId(1), WorkerId(2)) - 1.0).abs() < 1e-12);
        // No fluent languages at all ⇒ language component 0.
        let c = WorkerProfile::new(WorkerId(3), "c");
        let d = WorkerProfile::new(WorkerId(4), "d");
        let m = affinity_from_profiles(&[c, d], 0.0, 1.0, 0.0);
        assert_eq!(m.affinity(WorkerId(3), WorkerId(4)), 0.0);
    }
}
