//! The catalog: a named collection of relations.

use crate::error::StorageError;
use crate::query::ResultSet;
use crate::relation::Relation;
use crate::schema::Schema;
use std::collections::BTreeMap;

/// A database is a set of named relations. `BTreeMap` keeps iteration order
/// deterministic, which matters for snapshots and reproducible tests.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    /// Monotonic id source for entities created by the platform.
    next_id: u64,
}

impl Database {
    pub fn new() -> Database {
        Database {
            relations: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Allocate a fresh entity id (worker/task/project ids share one space,
    /// mirroring the platform's global identifiers).
    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Bump the id counter to at least `floor` (used when loading snapshots).
    pub fn ensure_id_floor(&mut self, floor: u64) {
        if self.next_id < floor {
            self.next_id = floor;
        }
    }

    pub fn next_id_hint(&self) -> u64 {
        self.next_id
    }

    pub fn create_relation(
        &mut self,
        name: &str,
        schema: Schema,
    ) -> Result<&mut Relation, StorageError> {
        if self.relations.contains_key(name) {
            return Err(StorageError::RelationExists(name.to_owned()));
        }
        self.relations
            .insert(name.to_owned(), Relation::new(name, schema));
        Ok(self.relations.get_mut(name).expect("just inserted"))
    }

    /// Create the relation if absent; error if present with a different schema.
    pub fn create_relation_if_absent(
        &mut self,
        name: &str,
        schema: Schema,
    ) -> Result<&mut Relation, StorageError> {
        if let Some(existing) = self.relations.get(name) {
            if existing.schema() != &schema {
                return Err(StorageError::RelationExists(name.to_owned()));
            }
            return Ok(self.relations.get_mut(name).expect("present"));
        }
        self.create_relation(name, schema)
    }

    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, StorageError> {
        self.relations
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_owned()))
    }

    pub fn relation(&self, name: &str) -> Result<&Relation, StorageError> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_owned()))
    }

    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation, StorageError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchRelation(name.to_owned()))
    }

    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations in deterministic (sorted) order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Materialise a whole relation as a [`ResultSet`] to start a query chain.
    pub fn scan(&self, name: &str) -> Result<ResultSet, StorageError> {
        Ok(ResultSet::from_relation(self.relation(name)?))
    }

    /// Total number of live rows across all relations.
    pub fn total_rows(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    #[test]
    fn create_scan_drop() {
        let mut db = Database::new();
        db.create_relation("t", Schema::of(&[("x", ValueType::Int)]))
            .unwrap();
        db.relation_mut("t").unwrap().insert(tuple![5i64]).unwrap();
        assert_eq!(db.scan("t").unwrap().len(), 1);
        assert_eq!(db.total_rows(), 1);
        assert!(db.has_relation("t"));
        let r = db.drop_relation("t").unwrap();
        assert_eq!(r.len(), 1);
        assert!(!db.has_relation("t"));
        assert!(db.scan("t").is_err());
    }

    #[test]
    fn duplicate_creation_rejected() {
        let mut db = Database::new();
        db.create_relation("t", Schema::of(&[("x", ValueType::Int)]))
            .unwrap();
        assert!(matches!(
            db.create_relation("t", Schema::of(&[("x", ValueType::Int)])),
            Err(StorageError::RelationExists(_))
        ));
    }

    #[test]
    fn create_if_absent_checks_schema() {
        let mut db = Database::new();
        let s = Schema::of(&[("x", ValueType::Int)]);
        db.create_relation_if_absent("t", s.clone()).unwrap();
        // same schema: ok
        db.create_relation_if_absent("t", s).unwrap();
        // different schema: error
        assert!(db
            .create_relation_if_absent("t", Schema::of(&[("y", ValueType::Str)]))
            .is_err());
    }

    #[test]
    fn fresh_ids_are_monotonic() {
        let mut db = Database::new();
        let a = db.fresh_id();
        let b = db.fresh_id();
        assert!(b > a);
        db.ensure_id_floor(100);
        assert!(db.fresh_id() >= 100);
        db.ensure_id_floor(5); // never moves backwards
        assert!(db.fresh_id() > 100);
    }

    #[test]
    fn names_sorted() {
        let mut db = Database::new();
        for n in ["zeta", "alpha", "mid"] {
            db.create_relation(n, Schema::of(&[("x", ValueType::Int)]))
                .unwrap();
        }
        let names: Vec<&str> = db.relation_names().collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(db.relations().count(), 3);
    }

    #[test]
    fn missing_relation_errors() {
        let mut db = Database::new();
        assert!(db.relation("nope").is_err());
        assert!(db.relation_mut("nope").is_err());
        assert!(db.drop_relation("nope").is_err());
    }
}
