//! Row-level expressions used for filters and computed columns.

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::value::Value;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Binary arithmetic operators (numeric; `Add` also concatenates strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Expression tree evaluated against a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    /// Case-sensitive substring containment on strings.
    Contains(Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }

    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }

    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }

    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    pub fn contains(self, needle: Expr) -> Expr {
        Expr::Contains(Box::new(self), Box::new(needle))
    }

    /// Evaluate against a tuple. Comparisons and arithmetic on `Null`
    /// produce `Null` (three-valued logic collapses to "not a match" at the
    /// filter boundary).
    pub fn eval(&self, row: &Tuple) -> Result<Value, StorageError> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or(StorageError::ColumnIndexOutOfRange(*i)),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(op.apply(va.cmp(&vb))))
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                arith(*op, &va, &vb)
            }
            Expr::And(a, b) => {
                let va = a.eval(row)?;
                if va == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                let vb = b.eval(row)?;
                match (truth(&va), truth(&vb)) {
                    (Some(true), Some(true)) => Ok(Value::Bool(true)),
                    (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                }
            }
            Expr::Or(a, b) => {
                let va = a.eval(row)?;
                if va == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let vb = b.eval(row)?;
                match (truth(&va), truth(&vb)) {
                    (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
                    (Some(false), Some(false)) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                }
            }
            Expr::Not(a) => {
                let v = a.eval(row)?;
                match truth(&v) {
                    Some(b) => Ok(Value::Bool(!b)),
                    None => Ok(Value::Null),
                }
            }
            Expr::IsNull(a) => Ok(Value::Bool(a.eval(row)?.is_null())),
            Expr::Contains(a, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                match (va.as_str(), vb.as_str()) {
                    (Some(h), Some(n)) => Ok(Value::Bool(h.contains(n))),
                    _ => Err(StorageError::ExprType(
                        "contains expects string operands".into(),
                    )),
                }
            }
        }
    }

    /// Evaluate as a filter predicate: true iff the result is `Bool(true)`.
    pub fn matches(&self, row: &Tuple) -> Result<bool, StorageError> {
        Ok(self.eval(row)? == Value::Bool(true))
    }
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        _ => Some(true), // non-null non-bool is truthy (convenience)
    }
}

fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value, StorageError> {
    // String concatenation via Add.
    if let (ArithOp::Add, Some(x), Some(y)) = (op, a.as_str(), b.as_str()) {
        let mut s = String::with_capacity(x.len() + y.len());
        s.push_str(x);
        s.push_str(y);
        return Ok(Value::Str(s));
    }
    // Integer arithmetic stays integral when both sides are ints.
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return match op {
            ArithOp::Add => Ok(Value::Int(x.wrapping_add(y))),
            ArithOp::Sub => Ok(Value::Int(x.wrapping_sub(y))),
            ArithOp::Mul => Ok(Value::Int(x.wrapping_mul(y))),
            ArithOp::Div => {
                if y == 0 {
                    Err(StorageError::ExprType("integer division by zero".into()))
                } else {
                    Ok(Value::Int(x / y))
                }
            }
            ArithOp::Mod => {
                if y == 0 {
                    Err(StorageError::ExprType("integer modulo by zero".into()))
                } else {
                    Ok(Value::Int(x % y))
                }
            }
        };
    }
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => {
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x % y,
            };
            Ok(Value::Float(r))
        }
        _ => Err(StorageError::ExprType(format!(
            "arithmetic on non-numeric operands {a} and {b}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn row() -> Tuple {
        tuple![10i64, "hello world", 2.5, Value::Null]
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert!(Expr::col(0).eq(Expr::lit(10i64)).matches(&r).unwrap());
        assert!(Expr::col(0).lt(Expr::lit(11i64)).matches(&r).unwrap());
        assert!(Expr::col(2).ge(Expr::lit(2.5)).matches(&r).unwrap());
        assert!(Expr::col(0).ne(Expr::lit(9i64)).matches(&r).unwrap());
        assert!(!Expr::col(0).gt(Expr::lit(10i64)).matches(&r).unwrap());
        assert!(Expr::col(0).le(Expr::lit(10i64)).matches(&r).unwrap());
    }

    #[test]
    fn null_comparisons_do_not_match() {
        let r = row();
        assert!(!Expr::col(3).eq(Expr::lit(1i64)).matches(&r).unwrap());
        assert!(!Expr::col(3).ne(Expr::lit(1i64)).matches(&r).unwrap());
        assert!(Expr::col(3).is_null().matches(&r).unwrap());
        assert!(!Expr::col(0).is_null().matches(&r).unwrap());
    }

    #[test]
    fn boolean_logic_three_valued() {
        let r = row();
        let t = || Expr::lit(true);
        let f = || Expr::lit(false);
        let n = || Expr::col(3).eq(Expr::lit(1i64)); // evaluates to Null
        assert!(t().and(t()).matches(&r).unwrap());
        assert!(!t().and(f()).matches(&r).unwrap());
        assert!(!n().and(t()).matches(&r).unwrap()); // Null AND true = Null
        assert!(!f().and(n()).matches(&r).unwrap()); // false short-circuits
        assert!(t().or(n()).matches(&r).unwrap()); // true short-circuits
        assert!(!f().or(f()).matches(&r).unwrap());
        assert!(!n().or(f()).matches(&r).unwrap());
        assert!(f().not().matches(&r).unwrap());
        assert!(!n().not().matches(&r).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(5i64)),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Int(15));
        let e = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::col(2)),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Float(5.0));
        let e = Expr::Arith(
            ArithOp::Mod,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(3i64)),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
    }

    #[test]
    fn division_by_zero_is_error() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(0i64)),
        );
        assert!(e.eval(&r).is_err());
        let e = Expr::Arith(
            ArithOp::Mod,
            Box::new(Expr::col(0)),
            Box::new(Expr::lit(0i64)),
        );
        assert!(e.eval(&r).is_err());
        // Float division by zero yields inf, not an error.
        let e = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::lit(1.0)),
            Box::new(Expr::lit(0.0)),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Float(f64::INFINITY));
    }

    #[test]
    fn string_concat_and_contains() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::lit("ab")),
            Box::new(Expr::lit("cd")),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Str("abcd".into()));
        assert!(Expr::col(1)
            .contains(Expr::lit("world"))
            .matches(&r)
            .unwrap());
        assert!(!Expr::col(1)
            .contains(Expr::lit("mars"))
            .matches(&r)
            .unwrap());
        // contains on non-strings is a type error
        assert!(Expr::col(0).contains(Expr::lit("1")).eval(&r).is_err());
    }

    #[test]
    fn arith_type_error() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Sub,
            Box::new(Expr::lit("a")),
            Box::new(Expr::lit(1i64)),
        );
        assert!(matches!(e.eval(&r), Err(StorageError::ExprType(_))));
    }

    #[test]
    fn column_out_of_range() {
        let r = row();
        assert!(Expr::col(99).eval(&r).is_err());
    }

    #[test]
    fn null_propagates_through_arith() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::col(3)),
            Box::new(Expr::lit(1i64)),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }
}
