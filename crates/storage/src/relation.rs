//! A single relation (table): slab row storage plus secondary hash indexes.
//!
//! Rows live in a slab (`Vec<Option<Tuple>>`) so that row ids stay stable
//! across deletions; every registered index is maintained eagerly on
//! insert/delete, which matches the platform's read-heavy workload (task
//! lookups vastly outnumber task insertions).

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Stable identifier of a row inside one relation.
pub type RowId = u64;

#[derive(Debug, Clone, Default)]
struct HashIndex {
    cols: Vec<usize>,
    unique: bool,
    map: HashMap<Vec<Value>, Vec<RowId>>,
}

/// An in-memory table with schema enforcement and secondary indexes.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    slots: Vec<Option<Tuple>>,
    free: Vec<RowId>,
    live: usize,
    indexes: Vec<HashIndex>,
}

impl Relation {
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            indexes: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Register a hash index over the named columns. Existing rows are
    /// indexed immediately. `unique` enforces key uniqueness on inserts.
    pub fn create_index(&mut self, cols: &[&str], unique: bool) -> Result<(), StorageError> {
        let mut idx_cols = Vec::with_capacity(cols.len());
        for c in cols {
            idx_cols.push(
                self.schema
                    .index_of(c)
                    .ok_or_else(|| StorageError::NoSuchColumn((*c).to_owned()))?,
            );
        }
        let mut index = HashIndex {
            cols: idx_cols,
            unique,
            map: HashMap::new(),
        };
        for (rid, slot) in self.slots.iter().enumerate() {
            if let Some(t) = slot {
                let key = t.key(&index.cols);
                let ids = index.map.entry(key).or_default();
                if unique && !ids.is_empty() {
                    return Err(StorageError::UniqueViolation {
                        relation: self.name.clone(),
                        key: format!("{:?}", t.key(&index.cols)),
                    });
                }
                ids.push(rid as RowId);
            }
        }
        self.indexes.push(index);
        Ok(())
    }

    /// Whether an index exactly covering `cols` (by position) exists.
    pub fn has_index_on(&self, cols: &[usize]) -> bool {
        self.indexes.iter().any(|i| i.cols == cols)
    }

    /// Insert a row, returning its id. Fails on schema or unique violations;
    /// a failed insert leaves the relation unchanged.
    pub fn insert(&mut self, row: impl Into<Tuple>) -> Result<RowId, StorageError> {
        let t: Tuple = row.into();
        self.schema.check_row(t.values())?;
        for ix in &self.indexes {
            if ix.unique {
                let key = t.key(&ix.cols);
                if ix.map.get(&key).is_some_and(|v| !v.is_empty()) {
                    return Err(StorageError::UniqueViolation {
                        relation: self.name.clone(),
                        key: format!("{key:?}"),
                    });
                }
            }
        }
        let rid = match self.free.pop() {
            Some(r) => {
                self.slots[r as usize] = Some(t.clone());
                r
            }
            None => {
                self.slots.push(Some(t.clone()));
                (self.slots.len() - 1) as RowId
            }
        };
        for ix in &mut self.indexes {
            ix.map.entry(t.key(&ix.cols)).or_default().push(rid);
        }
        self.live += 1;
        Ok(rid)
    }

    /// Insert unless an identical tuple is already present. Returns the row id
    /// and whether the tuple was newly inserted. This is the set-semantics
    /// primitive the Datalog evaluator builds on.
    pub fn insert_distinct(
        &mut self,
        row: impl Into<Tuple>,
    ) -> Result<(RowId, bool), StorageError> {
        let t: Tuple = row.into();
        self.schema.check_row(t.values())?;
        if let Some(rid) = self.find_row(&t) {
            return Ok((rid, false));
        }
        let rid = self.insert(t)?;
        Ok((rid, true))
    }

    fn find_row(&self, t: &Tuple) -> Option<RowId> {
        // Use the most selective available index, else scan.
        if let Some(ix) = self.indexes.first() {
            let key = t.key(&ix.cols);
            if let Some(ids) = ix.map.get(&key) {
                return ids
                    .iter()
                    .copied()
                    .find(|&rid| self.slots[rid as usize].as_ref() == Some(t));
            }
            return None;
        }
        self.iter_ids()
            .find(|&(_, row)| row == t)
            .map(|(rid, _)| rid)
    }

    /// True if an identical tuple exists.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.find_row(t).is_some()
    }

    pub fn get(&self, rid: RowId) -> Option<&Tuple> {
        self.slots.get(rid as usize).and_then(|s| s.as_ref())
    }

    /// Delete a row by id. Returns the removed tuple.
    pub fn delete(&mut self, rid: RowId) -> Result<Tuple, StorageError> {
        let slot = self
            .slots
            .get_mut(rid as usize)
            .ok_or(StorageError::NoSuchRow(rid))?;
        let t = slot.take().ok_or(StorageError::NoSuchRow(rid))?;
        for ix in &mut self.indexes {
            if let Entry::Occupied(mut e) = ix.map.entry(t.key(&ix.cols)) {
                e.get_mut().retain(|&r| r != rid);
                if e.get().is_empty() {
                    e.remove();
                }
            }
        }
        self.free.push(rid);
        self.live -= 1;
        Ok(t)
    }

    /// Delete every row matching `pred`; returns how many were removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Tuple) -> bool) -> usize {
        let victims: Vec<RowId> = self
            .iter_ids()
            .filter(|(_, t)| pred(t))
            .map(|(rid, _)| rid)
            .collect();
        let n = victims.len();
        for rid in victims {
            let _ = self.delete(rid);
        }
        n
    }

    /// Replace the row at `rid` with `row` (schema checked, indexes updated).
    pub fn update(&mut self, rid: RowId, row: impl Into<Tuple>) -> Result<(), StorageError> {
        let t: Tuple = row.into();
        self.schema.check_row(t.values())?;
        let old = self.get(rid).cloned().ok_or(StorageError::NoSuchRow(rid))?;
        // Unique check against *other* rows.
        for ix in &self.indexes {
            if ix.unique {
                let key = t.key(&ix.cols);
                if let Some(ids) = ix.map.get(&key) {
                    if ids.iter().any(|&r| r != rid) {
                        return Err(StorageError::UniqueViolation {
                            relation: self.name.clone(),
                            key: format!("{key:?}"),
                        });
                    }
                }
            }
        }
        for ix in &mut self.indexes {
            let old_key = old.key(&ix.cols);
            let new_key = t.key(&ix.cols);
            if old_key != new_key {
                if let Entry::Occupied(mut e) = ix.map.entry(old_key) {
                    e.get_mut().retain(|&r| r != rid);
                    if e.get().is_empty() {
                        e.remove();
                    }
                }
                ix.map.entry(new_key).or_default().push(rid);
            }
        }
        self.slots[rid as usize] = Some(t);
        Ok(())
    }

    /// Iterate live `(RowId, &Tuple)` pairs in slab order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (RowId, &Tuple)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (i as RowId, t)))
    }

    /// Iterate live rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.iter_ids().map(|(_, t)| t)
    }

    /// Point lookup on `cols` (column positions) matching `key` values.
    /// Uses the largest index whose columns are a subset of `cols`, then
    /// post-filters the remaining columns; falls back to a scan when no
    /// index applies.
    pub fn lookup(&self, cols: &[usize], key: &[Value]) -> Vec<&Tuple> {
        self.lookup_ids(cols, key)
            .into_iter()
            .map(|rid| self.slots[rid as usize].as_ref().expect("live row"))
            .collect()
    }

    /// [`lookup`](Self::lookup) returning row ids instead of tuples — the
    /// building block for indexed deletion
    /// ([`delete_matching`](Self::delete_matching)) and for callers that
    /// mutate matches.
    pub fn lookup_ids(&self, cols: &[usize], key: &[Value]) -> Vec<RowId> {
        // Pick the most selective applicable index.
        let mut best: Option<&HashIndex> = None;
        for ix in &self.indexes {
            if !ix.cols.is_empty()
                && ix.cols.iter().all(|c| cols.contains(c))
                && best.is_none_or(|b| ix.cols.len() > b.cols.len())
            {
                best = Some(ix);
            }
        }
        let matches = |t: &Tuple| cols.iter().zip(key).all(|(&c, k)| &t[c] == k);
        if let Some(ix) = best {
            let subkey: Vec<Value> = ix
                .cols
                .iter()
                .map(|c| {
                    let pos = cols.iter().position(|x| x == c).expect("subset");
                    key[pos].clone()
                })
                .collect();
            let Some(ids) = ix.map.get(&subkey) else {
                return Vec::new();
            };
            return ids
                .iter()
                .copied()
                .filter(|&rid| self.slots[rid as usize].as_ref().is_some_and(&matches))
                .collect();
        }
        self.iter_ids()
            .filter(|(_, t)| matches(t))
            .map(|(rid, _)| rid)
            .collect()
    }

    /// Delete every row matching `key` on `cols`, resolved through the
    /// best applicable index like [`lookup`](Self::lookup) — the indexed
    /// counterpart of [`delete_where`](Self::delete_where), which always
    /// scans every slot. Point deletions on indexed columns (clearing a
    /// task's relationship rows, revoking one worker's row) go from
    /// O(table) to O(matches). Returns how many rows were removed.
    pub fn delete_matching(&mut self, cols: &[usize], key: &[Value]) -> usize {
        let victims = self.lookup_ids(cols, key);
        if victims.is_empty() {
            return 0;
        }
        // Bulk form of [`delete`](Self::delete): removing n rows one by
        // one costs one index-vector `retain` per row — O(n²) when the
        // victims share an index key (exactly the clear-a-task case).
        // Take every victim out of its slot first, then repair each
        // affected (index, key) vector with a single `retain` pass.
        // Bookkeeping (free-list order, live count) matches n sequential
        // `delete` calls exactly.
        let victim_set: std::collections::HashSet<RowId> = victims.iter().copied().collect();
        let mut removed: Vec<Tuple> = Vec::with_capacity(victims.len());
        for &rid in &victims {
            let t = self.slots[rid as usize].take().expect("looked-up row");
            removed.push(t);
            self.free.push(rid);
            self.live -= 1;
        }
        for ix in &mut self.indexes {
            let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
            for t in &removed {
                let k = t.key(&ix.cols);
                if seen.insert(k.clone()) {
                    if let Entry::Occupied(mut e) = ix.map.entry(k) {
                        e.get_mut().retain(|r| !victim_set.contains(r));
                        if e.get().is_empty() {
                            e.remove();
                        }
                    }
                }
            }
        }
        victims.len()
    }

    /// Like [`lookup`](Self::lookup) but resolving column names first.
    pub fn lookup_by_name(
        &self,
        cols: &[&str],
        key: &[Value],
    ) -> Result<Vec<&Tuple>, StorageError> {
        let mut idx = Vec::with_capacity(cols.len());
        for c in cols {
            idx.push(
                self.schema
                    .index_of(c)
                    .ok_or_else(|| StorageError::NoSuchColumn((*c).to_owned()))?,
            );
        }
        Ok(self.lookup(&idx, key))
    }

    /// Remove all rows but keep schema and index definitions.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        for ix in &mut self.indexes {
            ix.map.clear();
        }
    }

    /// Clone all live tuples into a vector (snapshot order = slab order).
    pub fn to_rows(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::ValueType;

    fn workers() -> Relation {
        let mut r = Relation::new(
            "worker",
            Schema::of(&[
                ("id", ValueType::Id),
                ("name", ValueType::Str),
                ("skill", ValueType::Float),
            ]),
        );
        r.create_index(&["id"], true).unwrap();
        r
    }

    #[test]
    fn insert_get_len() {
        let mut r = workers();
        let a = r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        let b = r.insert(tuple![2u64, "bob", 0.5]).unwrap();
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap()[1], Value::Str("ann".into()));
    }

    #[test]
    fn schema_violation_rejected() {
        let mut r = workers();
        let err = r.insert(tuple![1u64, 2i64, 0.9]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert!(r.is_empty());
    }

    #[test]
    fn unique_index_enforced() {
        let mut r = workers();
        r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        let err = r.insert(tuple![1u64, "dup", 0.1]).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn create_unique_index_on_conflicting_data_fails() {
        let mut r = Relation::new("t", Schema::of(&[("k", ValueType::Int)]));
        r.insert(tuple![1i64]).unwrap();
        r.insert(tuple![1i64]).unwrap();
        assert!(r.create_index(&["k"], true).is_err());
    }

    #[test]
    fn delete_frees_slot_and_index() {
        let mut r = workers();
        let a = r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        let t = r.delete(a).unwrap();
        assert_eq!(t[0], Value::Id(1));
        assert!(r.get(a).is_none());
        assert!(r
            .lookup_by_name(&["id"], &[Value::Id(1)])
            .unwrap()
            .is_empty());
        // Slot reuse keeps ids stable for other rows.
        let b = r.insert(tuple![2u64, "bob", 0.5]).unwrap();
        assert_eq!(a, b, "slab reuses freed slot");
        assert!(r.delete(999).is_err());
    }

    #[test]
    fn update_maintains_indexes() {
        let mut r = workers();
        let a = r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        r.update(a, tuple![3u64, "ann", 0.9]).unwrap();
        assert!(r
            .lookup_by_name(&["id"], &[Value::Id(1)])
            .unwrap()
            .is_empty());
        assert_eq!(r.lookup_by_name(&["id"], &[Value::Id(3)]).unwrap().len(), 1);
    }

    #[test]
    fn update_unique_violation() {
        let mut r = workers();
        let _a = r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        let b = r.insert(tuple![2u64, "bob", 0.5]).unwrap();
        let err = r.update(b, tuple![1u64, "bob", 0.5]).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // Self-update to the same key is fine.
        r.update(b, tuple![2u64, "bobby", 0.6]).unwrap();
    }

    #[test]
    fn insert_distinct_dedups() {
        let mut r = Relation::new("t", Schema::of(&[("x", ValueType::Int)]));
        let (a, fresh) = r.insert_distinct(tuple![1i64]).unwrap();
        assert!(fresh);
        let (b, fresh2) = r.insert_distinct(tuple![1i64]).unwrap();
        assert!(!fresh2);
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&tuple![1i64]));
        assert!(!r.contains(&tuple![2i64]));
    }

    #[test]
    fn lookup_without_index_scans() {
        let mut r = workers();
        r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        r.insert(tuple![2u64, "bob", 0.9]).unwrap();
        // no index on skill
        let hits = r.lookup_by_name(&["skill"], &[Value::Float(0.9)]).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(r.lookup_by_name(&["nope"], &[Value::Null]).is_err());
    }

    #[test]
    fn delete_where_counts() {
        let mut r = workers();
        for i in 0..10u64 {
            r.insert(tuple![i, "w", (i as f64) / 10.0]).unwrap();
        }
        let n = r.delete_where(|t| t[2].as_float().unwrap() < 0.5);
        assert_eq!(n, 5);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn clear_keeps_indexes_working() {
        let mut r = workers();
        r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        r.clear();
        assert!(r.is_empty());
        r.insert(tuple![1u64, "ann", 0.9]).unwrap();
        assert_eq!(r.lookup_by_name(&["id"], &[Value::Id(1)]).unwrap().len(), 1);
    }

    #[test]
    fn non_unique_index_groups() {
        let mut r = Relation::new(
            "t",
            Schema::of(&[("g", ValueType::Int), ("v", ValueType::Int)]),
        );
        r.create_index(&["g"], false).unwrap();
        for i in 0..6i64 {
            r.insert(tuple![i % 2, i]).unwrap();
        }
        assert_eq!(r.lookup_by_name(&["g"], &[Value::Int(0)]).unwrap().len(), 3);
        assert!(r.has_index_on(&[0]));
        assert!(!r.has_index_on(&[1]));
    }
}
