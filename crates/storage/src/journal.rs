//! The append-only event journal: the durable backbone of the platform's
//! event-driven execution core.
//!
//! A journal is an ordered log of [`JournalEntry`] records, each a short
//! `kind` tag plus a row of [`Value`] arguments. The platform appends one
//! entry per successful state-changing operation; replaying the entries
//! against a fresh platform reconstructs the live state deterministically
//! (see `crowd4u-core`'s `events` module for the entry vocabulary).
//!
//! Like [`crate::snapshot`], the on-disk form is a versioned, line-oriented
//! text format that round-trips exactly, using the same escaped cell
//! encoding for values:
//!
//! ```text
//! crowd4u-journal v1
//! event <kind> <v1>\t<v2>...
//! event <kind>
//! ```
//!
//! Snapshots and journals compose: a snapshot captures a database at an
//! instant, the journal captures how the platform got there, so a platform
//! can be restored either by loading relation snapshots or by replaying the
//! journal from the beginning.

use crate::error::StorageError;
use crate::snapshot::{decode_value, encode_value};
use crate::value::Value;
use std::fmt::Write as _;
use std::path::Path;

const MAGIC: &str = "crowd4u-journal v1";

/// One journaled event: a kind tag plus its argument row.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Short event tag (no whitespace; e.g. `answer`, `clock`, `drain`).
    pub kind: String,
    /// Event arguments in the order the decoder expects them.
    pub args: Vec<Value>,
}

impl JournalEntry {
    pub fn new(kind: impl Into<String>, args: Vec<Value>) -> JournalEntry {
        JournalEntry {
            kind: kind.into(),
            args,
        }
    }
}

/// An append-only, replayable log of [`JournalEntry`] records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventJournal {
    entries: Vec<JournalEntry>,
}

impl EventJournal {
    pub fn new() -> EventJournal {
        EventJournal::default()
    }

    /// Append an entry; returns its sequence number (position). The kind
    /// must be non-empty and free of whitespace so the text format stays
    /// one-line-per-entry.
    pub fn append(
        &mut self,
        kind: impl Into<String>,
        args: Vec<Value>,
    ) -> Result<u64, StorageError> {
        let kind = kind.into();
        if kind.is_empty() || kind.chars().any(|c| c.is_whitespace()) {
            return Err(StorageError::Journal {
                line: 0,
                message: format!("invalid entry kind `{kind}`"),
            });
        }
        self.entries.push(JournalEntry { kind, args });
        Ok(self.entries.len() as u64 - 1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry at a sequence number.
    pub fn get(&self, seq: usize) -> Option<&JournalEntry> {
        self.entries.get(seq)
    }

    /// All entries in append order.
    pub fn iter(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// Entries from a sequence number on (for incremental consumers).
    pub fn since(&self, seq: usize) -> &[JournalEntry] {
        &self.entries[seq.min(self.entries.len())..]
    }

    /// Serialise the journal to its canonical text form.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        for e in &self.entries {
            let _ = write!(out, "event {}", e.kind);
            for (i, v) in e.args.iter().enumerate() {
                out.push(if i == 0 { ' ' } else { '\t' });
                encode_value(v, &mut out);
            }
            out.push('\n');
        }
        out
    }

    /// Parse a journal produced by [`dump`](Self::dump).
    pub fn load(text: &str) -> Result<EventJournal, StorageError> {
        let jerr = |line: usize, message: String| StorageError::Journal { line, message };
        let mut lines = text.lines().enumerate();
        let (_, first) = lines
            .next()
            .ok_or_else(|| jerr(1, "empty journal".into()))?;
        if first != MAGIC {
            return Err(jerr(1, format!("bad magic `{first}`")));
        }
        let mut journal = EventJournal::new();
        for (idx, raw) in lines {
            let lineno = idx + 1;
            let line = raw.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("event ")
                .ok_or_else(|| jerr(lineno, format!("expected `event`, got `{line}`")))?;
            let (kind, cells) = match rest.split_once(' ') {
                Some((k, c)) => (k, Some(c)),
                None => (rest, None),
            };
            if kind.is_empty() {
                return Err(jerr(lineno, "entry without a kind".into()));
            }
            let mut args = Vec::new();
            if let Some(cells) = cells {
                for cell in cells.split('\t') {
                    args.push(decode_value(cell).map_err(|m| jerr(lineno, m))?);
                }
            }
            journal.entries.push(JournalEntry {
                kind: kind.to_owned(),
                args,
            });
        }
        Ok(journal)
    }

    /// Stitch several per-shard entry streams into one journal, ordered by
    /// a caller-supplied sort key (e.g. the global sequence number a router
    /// stamped on each event). All entries are sorted together by
    /// (key, stream index, position in stream), so streams need no
    /// pre-sorting, and on equal keys the earlier stream wins the tie — a
    /// coordinator stream can safely share a key with follower streams.
    /// The usual entry-kind validation applies.
    pub fn merge_streams<K: Ord>(
        streams: Vec<Vec<(K, JournalEntry)>>,
    ) -> Result<EventJournal, StorageError> {
        let mut tagged: Vec<(K, usize, usize, JournalEntry)> = Vec::new();
        for (stream_idx, stream) in streams.into_iter().enumerate() {
            for (pos, (key, entry)) in stream.into_iter().enumerate() {
                tagged.push((key, stream_idx, pos, entry));
            }
        }
        tagged.sort_by(|a, b| (&a.0, a.1, a.2).cmp(&(&b.0, b.1, b.2)));
        let mut journal = EventJournal::new();
        for (_, _, _, entry) in tagged {
            journal.append(entry.kind, entry.args)?;
        }
        Ok(journal)
    }

    /// Write the journal to a file.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), StorageError> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.dump().as_bytes())?;
        f.flush()?;
        Ok(())
    }

    /// Read a journal from a file.
    pub fn load_from_file(path: impl AsRef<Path>) -> Result<EventJournal, StorageError> {
        EventJournal::load(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventJournal {
        let mut j = EventJournal::new();
        j.append(
            "worker",
            vec![Value::Id(1), Value::Str("ann\twith tab".into())],
        )
        .unwrap();
        j.append("clock", vec![Value::Int(600)]).unwrap();
        j.append("drain", vec![]).unwrap();
        j.append(
            "answer",
            vec![
                Value::Id(1),
                Value::Id(2),
                Value::Str("multi\nline".into()),
                Value::Null,
                Value::Bool(true),
                Value::Float(0.1 + 0.2),
            ],
        )
        .unwrap();
        j
    }

    #[test]
    fn append_assigns_sequence_numbers() {
        let mut j = EventJournal::new();
        assert!(j.is_empty());
        assert_eq!(j.append("a", vec![]).unwrap(), 0);
        assert_eq!(j.append("b", vec![Value::Int(1)]).unwrap(), 1);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(0).unwrap().kind, "a");
        assert_eq!(j.get(1).unwrap().args, vec![Value::Int(1)]);
        assert!(j.get(2).is_none());
        assert_eq!(j.since(1).len(), 1);
        assert_eq!(j.since(99).len(), 0);
    }

    #[test]
    fn kinds_with_whitespace_rejected() {
        let mut j = EventJournal::new();
        assert!(j.append("", vec![]).is_err());
        assert!(j.append("two words", vec![]).is_err());
        assert!(j.append("tab\tbed", vec![]).is_err());
        assert!(j.append("line\nfeed", vec![]).is_err());
        assert!(j.is_empty());
    }

    #[test]
    fn round_trip_exact() {
        let j = sample();
        let text = j.dump();
        let back = EventJournal::load(&text).unwrap();
        assert_eq!(back, j);
        // Canonical: dumping the loaded journal is byte-identical.
        assert_eq!(back.dump(), text);
    }

    #[test]
    fn empty_journal_round_trips() {
        let j = EventJournal::new();
        let back = EventJournal::load(&j.dump()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(EventJournal::load("").is_err());
        assert!(EventJournal::load("not a journal\n").is_err());
        assert!(EventJournal::load("crowd4u-journal v1\nwat x\n").is_err());
        assert!(EventJournal::load("crowd4u-journal v1\nevent \n").is_err());
        assert!(EventJournal::load("crowd4u-journal v1\nevent k x9\n").is_err()); // bad tag
        assert!(EventJournal::load("crowd4u-journal v1\nevent k s\\q\n").is_err());
        // blank lines tolerated
        let ok = EventJournal::load("crowd4u-journal v1\n\nevent k i1\n").unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn merge_streams_orders_by_key_then_stream() {
        let e = |k: &str, n: i64| (n as u64, JournalEntry::new(k, vec![Value::Int(n)]));
        // Shard 0 recorded seqs 0, 3 (and the drain at 3 shares the key);
        // shard 1 recorded seqs 1, 2.
        let s0 = vec![e("a", 0), e("drain", 3)];
        let s1 = vec![e("b", 1), e("c", 2), (3, JournalEntry::new("d", vec![]))];
        let merged = EventJournal::merge_streams(vec![s0, s1]).unwrap();
        let kinds: Vec<&str> = merged.iter().map(|e| e.kind.as_str()).collect();
        // Equal keys: the earlier stream (coordinator) wins the tie.
        assert_eq!(kinds, vec!["a", "b", "c", "drain", "d"]);
        // Canonical text round-trip still holds.
        assert_eq!(EventJournal::load(&merged.dump()).unwrap(), merged);
    }

    #[test]
    fn merge_streams_rejects_bad_kinds() {
        let s = vec![(0u64, JournalEntry::new("two words", vec![]))];
        assert!(EventJournal::merge_streams(vec![s]).is_err());
        assert!(EventJournal::merge_streams::<u64>(vec![])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn file_round_trip() {
        let j = sample();
        let dir = std::env::temp_dir().join("crowd4u_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.txt");
        j.save_to_file(&path).unwrap();
        let back = EventJournal::load_from_file(&path).unwrap();
        assert_eq!(back, j);
        std::fs::remove_file(&path).ok();
        assert!(EventJournal::load_from_file(dir.join("missing.txt")).is_err());
    }
}
