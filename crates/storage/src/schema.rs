//! Relation schemas: named, typed, optionally nullable columns.

use crate::error::StorageError;
use crate::value::{Value, ValueType};
use std::fmt;

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ValueType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of columns with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Result<Schema, StorageError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs, all non-nullable.
    pub fn of(cols: &[(&str, ValueType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("duplicate column name in Schema::of")
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Validate that a row of values conforms to this schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(StorageError::NullViolation(c.name.clone()));
                }
            } else if !v.conforms_to(c.ty) {
                return Err(StorageError::TypeMismatch {
                    column: c.name.clone(),
                    expected: c.ty,
                    got: v.value_type(),
                });
            }
        }
        Ok(())
    }

    /// Schema produced by keeping only the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema, StorageError> {
        let mut cols = Vec::with_capacity(indices.len());
        for &i in indices {
            let c = self
                .columns
                .get(i)
                .ok_or(StorageError::ColumnIndexOutOfRange(i))?;
            cols.push(c.clone());
        }
        // Projection may duplicate a column; disambiguate with a suffix.
        let mut out: Vec<Column> = Vec::with_capacity(cols.len());
        for c in cols {
            let mut name = c.name.clone();
            let mut n = 1;
            while out.iter().any(|p| p.name == name) {
                n += 1;
                name = format!("{}_{n}", c.name);
            }
            out.push(Column { name, ..c });
        }
        Schema::new(out)
    }

    /// Schema of the concatenation `self ++ other` (for joins). Name clashes
    /// from the right side get a `right_` prefix.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let mut name = c.name.clone();
            while cols.iter().any(|p| p.name == name) {
                name = format!("right_{name}");
            }
            cols.push(Column { name, ..c.clone() });
        }
        Schema { columns: cols }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}: {}{}",
                c.name,
                c.ty,
                if c.nullable { "?" } else { "" }
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(&[
            ("a", ValueType::Int),
            ("b", ValueType::Str),
            ("c", ValueType::Float),
        ])
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::new(vec![
            Column::new("x", ValueType::Int),
            Column::new("x", ValueType::Str),
        ])
        .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn index_of_and_column() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
        assert_eq!(s.column(2).unwrap().name, "c");
        assert!(s.column(3).is_none());
    }

    #[test]
    fn check_row_accepts_conforming() {
        let s = abc();
        s.check_row(&[Value::Int(1), Value::Str("x".into()), Value::Float(0.5)])
            .unwrap();
    }

    #[test]
    fn check_row_rejects_arity() {
        let s = abc();
        let err = s.check_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn check_row_rejects_type() {
        let s = abc();
        let err = s
            .check_row(&[
                Value::Str("no".into()),
                Value::Str("x".into()),
                Value::Float(0.5),
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn check_row_null_rules() {
        let s = Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::nullable("b", ValueType::Str),
        ])
        .unwrap();
        s.check_row(&[Value::Int(1), Value::Null]).unwrap();
        let err = s.check_row(&[Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation(_)));
    }

    #[test]
    fn project_renames_duplicates() {
        let s = abc();
        let p = s.project(&[0, 0, 1]).unwrap();
        assert_eq!(p.columns()[0].name, "a");
        assert_eq!(p.columns()[1].name, "a_2");
        assert_eq!(p.columns()[2].name, "b");
    }

    #[test]
    fn project_out_of_range() {
        let err = abc().project(&[5]).unwrap_err();
        assert!(matches!(err, StorageError::ColumnIndexOutOfRange(5)));
    }

    #[test]
    fn join_prefixes_clashes() {
        let s = abc();
        let j = s.join(&abc());
        assert_eq!(j.arity(), 6);
        assert_eq!(j.columns()[3].name, "right_a");
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::nullable("b", ValueType::Str),
        ])
        .unwrap();
        assert_eq!(s.to_string(), "(a: int, b: str?)");
    }
}
