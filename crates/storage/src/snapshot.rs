//! Snapshot persistence: a human-readable, line-oriented dump of a whole
//! [`Database`] that round-trips exactly.
//!
//! Format:
//! ```text
//! crowd4u-snapshot v1
//! nextid <n>
//! relation <name>
//! col <name> <type> <nullable>
//! row <v1>\t<v2>...      (values in escaped cell encoding)
//! end
//! ```
//! Strings are escaped (`\t`, `\n`, `\\`, `\r`) so one row is always one
//! line. The format is versioned so future layouts can coexist.

use crate::database::Database;
use crate::error::StorageError;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::fmt::Write as _;
use std::path::Path;

const MAGIC: &str = "crowd4u-snapshot v1";

fn escape_cell(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
}

fn unescape_cell(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape \\{other}")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Encode one value in the tagged single-cell form shared by snapshots and
/// the event journal (`_` null, `b` bool, `i` int, `f` float, `s` string,
/// `#` id; strings escaped so a cell never spans lines or contains tabs).
pub(crate) fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('_'),
        Value::Bool(b) => {
            out.push('b');
            out.push(if *b { '1' } else { '0' });
        }
        Value::Int(i) => {
            out.push('i');
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            out.push('f');
            // {:?} prints enough digits to round-trip f64 exactly.
            let _ = write!(out, "{f:?}");
        }
        Value::Str(s) => {
            out.push('s');
            escape_cell(s, out);
        }
        Value::Id(i) => {
            out.push('#');
            let _ = write!(out, "{i}");
        }
    }
}

/// Decode one cell produced by [`encode_value`].
pub(crate) fn decode_value(cell: &str) -> Result<Value, String> {
    let mut chars = cell.chars();
    let tag = chars.next().ok_or("empty cell")?;
    let rest: String = chars.collect();
    match tag {
        '_' => Ok(Value::Null),
        'b' => match rest.as_str() {
            "1" => Ok(Value::Bool(true)),
            "0" => Ok(Value::Bool(false)),
            _ => Err(format!("bad bool `{rest}`")),
        },
        'i' => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| e.to_string()),
        'f' => match rest.as_str() {
            "NaN" => Ok(Value::Float(f64::NAN)),
            "inf" => Ok(Value::Float(f64::INFINITY)),
            "-inf" => Ok(Value::Float(f64::NEG_INFINITY)),
            _ => rest
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| e.to_string()),
        },
        's' => unescape_cell(&rest).map(Value::Str),
        '#' => rest
            .parse::<u64>()
            .map(Value::Id)
            .map_err(|e| e.to_string()),
        _ => Err(format!("unknown tag `{tag}`")),
    }
}

/// Serialise the database (schemas + rows + id counter) to text.
/// Index definitions are *not* part of snapshots; callers re-create them
/// (the platform layer does this on load).
///
/// Rows are emitted in sorted order, not storage order, so the dump is a
/// *canonical* form: two databases holding the same row sets serialise
/// identically even when their insertion histories differ (e.g. a derived
/// relation grown incrementally vs recomputed from scratch, or a slab
/// whose free list was exercised by deletions).
pub fn dump(db: &Database) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    let _ = writeln!(out, "nextid {}", db.next_id_hint());
    for rel in db.relations() {
        let _ = writeln!(out, "relation {}", rel.name());
        for c in rel.schema().columns() {
            let _ = writeln!(out, "col {} {} {}", c.name, c.ty, c.nullable);
        }
        let mut rows: Vec<_> = rel.iter().collect();
        rows.sort();
        for row in rows {
            out.push_str("row ");
            for (i, v) in row.values().iter().enumerate() {
                if i > 0 {
                    out.push('\t');
                }
                encode_value(v, &mut out);
            }
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

/// Parse a snapshot produced by [`dump`].
pub fn load(text: &str) -> Result<Database, StorageError> {
    let snap_err = |line: usize, message: String| StorageError::Snapshot { line, message };
    let mut lines = text.lines().enumerate();
    let (_, first) = lines
        .next()
        .ok_or_else(|| snap_err(1, "empty snapshot".into()))?;
    if first != MAGIC {
        return Err(snap_err(1, format!("bad magic `{first}`")));
    }
    let mut db = Database::new();
    let mut current: Option<(String, Vec<Column>, Vec<Tuple>)> = None;
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
        match kw {
            "nextid" => {
                let n = rest
                    .parse::<u64>()
                    .map_err(|e| snap_err(lineno, e.to_string()))?;
                db.ensure_id_floor(n);
            }
            "relation" => {
                if current.is_some() {
                    return Err(snap_err(lineno, "nested relation".into()));
                }
                if rest.is_empty() {
                    return Err(snap_err(lineno, "relation without a name".into()));
                }
                current = Some((rest.to_owned(), Vec::new(), Vec::new()));
            }
            "col" => {
                let cur = current
                    .as_mut()
                    .ok_or_else(|| snap_err(lineno, "col outside relation".into()))?;
                if !cur.2.is_empty() {
                    return Err(snap_err(lineno, "col after rows".into()));
                }
                let parts: Vec<&str> = rest.split(' ').collect();
                if parts.len() != 3 {
                    return Err(snap_err(lineno, "col needs: name type nullable".into()));
                }
                let ty = ValueType::parse(parts[1])
                    .ok_or_else(|| snap_err(lineno, format!("bad type `{}`", parts[1])))?;
                let nullable = match parts[2] {
                    "true" => true,
                    "false" => false,
                    other => return Err(snap_err(lineno, format!("bad nullable `{other}`"))),
                };
                cur.1.push(Column {
                    name: parts[0].to_owned(),
                    ty,
                    nullable,
                });
            }
            "row" => {
                let cur = current
                    .as_mut()
                    .ok_or_else(|| snap_err(lineno, "row outside relation".into()))?;
                let mut vals = Vec::with_capacity(cur.1.len());
                for cell in rest.split('\t') {
                    vals.push(decode_value(cell).map_err(|m| snap_err(lineno, m))?);
                }
                cur.2.push(Tuple::new(vals));
            }
            "end" => {
                let (name, cols, rows) = current
                    .take()
                    .ok_or_else(|| snap_err(lineno, "end outside relation".into()))?;
                let schema = Schema::new(cols).map_err(|e| snap_err(lineno, e.to_string()))?;
                let rel = db
                    .create_relation(&name, schema)
                    .map_err(|e| snap_err(lineno, e.to_string()))?;
                for row in rows {
                    rel.insert(row)
                        .map_err(|e| snap_err(lineno, e.to_string()))?;
                }
            }
            other => return Err(snap_err(lineno, format!("unknown keyword `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(snap_err(0, "unterminated relation".into()));
    }
    Ok(db)
}

/// Write a snapshot to a file.
pub fn save_to_file(db: &Database, path: impl AsRef<Path>) -> Result<(), StorageError> {
    use std::io::Write;
    let text = dump(db);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(text.as_bytes())?;
    f.flush()?;
    Ok(())
}

/// Read a snapshot from a file.
pub fn load_from_file(path: impl AsRef<Path>) -> Result<Database, StorageError> {
    let text = std::fs::read_to_string(path)?;
    load(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sample() -> Database {
        let mut db = Database::new();
        let r = db
            .create_relation(
                "worker",
                Schema::new(vec![
                    Column::new("id", ValueType::Id),
                    Column::new("name", ValueType::Str),
                    Column::nullable("skill", ValueType::Float),
                    Column::new("active", ValueType::Bool),
                ])
                .unwrap(),
            )
            .unwrap();
        r.insert(tuple![1u64, "ann\twith tab", 0.1 + 0.2, true])
            .unwrap();
        r.insert(tuple![2u64, "multi\nline", Value::Null, false])
            .unwrap();
        r.insert(tuple![3u64, "back\\slash", f64::NAN, true])
            .unwrap();
        db.create_relation("empty", Schema::of(&[("x", ValueType::Int)]))
            .unwrap();
        db.fresh_id();
        db.fresh_id();
        db
    }

    #[test]
    fn round_trip_exact() {
        let db = sample();
        let text = dump(&db);
        let back = load(&text).unwrap();
        assert_eq!(back.next_id_hint(), db.next_id_hint());
        let names: Vec<&str> = back.relation_names().collect();
        assert_eq!(names, vec!["empty", "worker"]);
        let orig = db.relation("worker").unwrap().to_rows();
        let got = back.relation("worker").unwrap().to_rows();
        assert_eq!(orig, got); // NaN compares equal under Value's total order
        assert!(back.relation("empty").unwrap().is_empty());
        // Dump of the loaded database is byte-identical (canonical form).
        assert_eq!(dump(&back), text);
    }

    #[test]
    fn special_floats_round_trip() {
        let mut db = Database::new();
        let r = db
            .create_relation("f", Schema::of(&[("x", ValueType::Float)]))
            .unwrap();
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::MIN, f64::MAX, 1e-300] {
            r.insert(tuple![v]).unwrap();
        }
        let back = load(&dump(&db)).unwrap();
        // The dump is canonical (sorted), so compare as row sets.
        let mut orig = db.relation("f").unwrap().to_rows();
        let mut got = back.relation("f").unwrap().to_rows();
        orig.sort();
        got.sort();
        assert_eq!(got, orig);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            load("not a snapshot\n"),
            Err(StorageError::Snapshot { line: 1, .. })
        ));
        assert!(load("").is_err());
    }

    #[test]
    fn structural_errors_rejected() {
        let cases = [
            "crowd4u-snapshot v1\ncol a int false\n", // col outside relation
            "crowd4u-snapshot v1\nrow i1\n",          // row outside relation
            "crowd4u-snapshot v1\nend\n",             // end outside relation
            "crowd4u-snapshot v1\nrelation a\nrelation b\n", // nested
            "crowd4u-snapshot v1\nrelation a\n",      // unterminated
            "crowd4u-snapshot v1\nwat 1\n",           // unknown keyword
            "crowd4u-snapshot v1\nrelation a\ncol a wat false\nend\n", // bad type
            "crowd4u-snapshot v1\nrelation a\ncol a int maybe\nend\n", // bad nullable
            "crowd4u-snapshot v1\nrelation a\ncol a int false\nrow x9\nend\n", // bad tag
            "crowd4u-snapshot v1\nrelation a\ncol a int false\nrow i1\ncol b int false\nend\n", // col after row
        ];
        for c in cases {
            assert!(load(c).is_err(), "should reject: {c:?}");
        }
    }

    #[test]
    fn value_codec_edge_cases() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Str(String::new()),
            Value::Str("tab\t nl\n cr\r bs\\ plain".into()),
            Value::Id(u64::MAX),
            Value::Float(-0.0),
        ] {
            let mut s = String::new();
            encode_value(&v, &mut s);
            let back = decode_value(&s).unwrap();
            // Compare through the canonical encoding (handles -0.0 == 0.0).
            let mut s2 = String::new();
            encode_value(&back, &mut s2);
            assert_eq!(s, s2, "value {v:?}");
        }
        assert!(decode_value("").is_err());
        assert!(decode_value("b7").is_err());
        assert!(decode_value("sbad\\escape\\q").is_err());
        assert!(decode_value("s\\").is_err());
    }

    #[test]
    fn file_round_trip() {
        let db = sample();
        let dir = std::env::temp_dir().join("crowd4u_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        save_to_file(&db, &path).unwrap();
        let back = load_from_file(&path).unwrap();
        assert_eq!(dump(&back), dump(&db));
        std::fs::remove_file(&path).ok();
        assert!(load_from_file(dir.join("missing.txt")).is_err());
    }
}
