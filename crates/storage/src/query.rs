//! Relational operators: filter, project, join, aggregate, sort, distinct.
//!
//! Operators consume/produce [`ResultSet`]s — schema-carrying row batches —
//! so they can be chained without materialising a full `Relation` (indexes
//! are not needed mid-pipeline).

use crate::error::StorageError;
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::HashMap;

/// An intermediate query result: a schema plus materialised rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Tuple>,
}

impl ResultSet {
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> ResultSet {
        ResultSet { schema, rows }
    }

    /// Snapshot of a whole relation.
    pub fn from_relation(rel: &Relation) -> ResultSet {
        ResultSet {
            schema: rel.schema().clone(),
            rows: rel.to_rows(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Keep rows matching the predicate expression.
    pub fn filter(self, pred: &Expr) -> Result<ResultSet, StorageError> {
        let mut rows = Vec::with_capacity(self.rows.len());
        for r in self.rows {
            if pred.matches(&r)? {
                rows.push(r);
            }
        }
        Ok(ResultSet {
            schema: self.schema,
            rows,
        })
    }

    /// Project onto named columns.
    pub fn project(self, cols: &[&str]) -> Result<ResultSet, StorageError> {
        let mut idx = Vec::with_capacity(cols.len());
        for c in cols {
            idx.push(
                self.schema
                    .index_of(c)
                    .ok_or_else(|| StorageError::NoSuchColumn((*c).to_owned()))?,
            );
        }
        let schema = self.schema.project(&idx)?;
        let rows = self.rows.iter().map(|t| t.project(&idx)).collect();
        Ok(ResultSet { schema, rows })
    }

    /// Equi-join with another result set on `(left_col, right_col)` name
    /// pairs, using a hash table built over the smaller side's keys.
    pub fn join(self, right: ResultSet, on: &[(&str, &str)]) -> Result<ResultSet, StorageError> {
        let mut lcols = Vec::with_capacity(on.len());
        let mut rcols = Vec::with_capacity(on.len());
        for (l, r) in on {
            lcols.push(
                self.schema
                    .index_of(l)
                    .ok_or_else(|| StorageError::NoSuchColumn((*l).to_owned()))?,
            );
            rcols.push(
                right
                    .schema
                    .index_of(r)
                    .ok_or_else(|| StorageError::NoSuchColumn((*r).to_owned()))?,
            );
        }
        let schema = self.schema.join(&right.schema);
        // Null keys never join (SQL semantics).
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in &right.rows {
            let key = t.key(&rcols);
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(t);
        }
        let mut rows = Vec::new();
        for l in &self.rows {
            let key = l.key(&lcols);
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for r in matches {
                    rows.push(l.concat(r));
                }
            }
        }
        Ok(ResultSet { schema, rows })
    }

    /// Remove duplicate rows, keeping first occurrence order.
    pub fn distinct(mut self) -> ResultSet {
        let mut seen = std::collections::HashSet::with_capacity(self.rows.len());
        self.rows.retain(|r| seen.insert(r.clone()));
        self
    }

    /// Sort by the named columns ascending (stable).
    pub fn sort_by(mut self, cols: &[&str]) -> Result<ResultSet, StorageError> {
        let mut idx = Vec::with_capacity(cols.len());
        for c in cols {
            idx.push(
                self.schema
                    .index_of(c)
                    .ok_or_else(|| StorageError::NoSuchColumn((*c).to_owned()))?,
            );
        }
        self.rows.sort_by_key(|a| a.key(&idx));
        Ok(self)
    }

    /// Group by `group_cols` and compute `aggs`; output columns are the group
    /// columns followed by one column per aggregate.
    pub fn aggregate(
        self,
        group_cols: &[&str],
        aggs: &[AggSpec<'_>],
    ) -> Result<ResultSet, StorageError> {
        let mut gidx = Vec::with_capacity(group_cols.len());
        for c in group_cols {
            gidx.push(
                self.schema
                    .index_of(c)
                    .ok_or_else(|| StorageError::NoSuchColumn((*c).to_owned()))?,
            );
        }
        let mut acols = Vec::with_capacity(aggs.len());
        for a in aggs {
            match a.func {
                AggFunc::Count => acols.push(usize::MAX), // ignores the column
                _ => acols.push(
                    self.schema
                        .index_of(a.col)
                        .ok_or_else(|| StorageError::NoSuchColumn(a.col.to_owned()))?,
                ),
            }
        }
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        for row in &self.rows {
            let key = row.key(&gidx);
            let states = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                aggs.iter().map(|a| AggState::new(a.func)).collect()
            });
            for (st, &ci) in states.iter_mut().zip(&acols) {
                let v = if ci == usize::MAX {
                    Value::Int(1)
                } else {
                    row[ci].clone()
                };
                st.feed(&v)?;
            }
        }
        // Output schema.
        let mut cols: Vec<Column> = gidx
            .iter()
            .map(|&i| self.schema.columns()[i].clone())
            .collect();
        for a in aggs {
            cols.push(Column::nullable(a.name.to_owned(), a.func.output_type()));
        }
        let schema = Schema::new(cols)?;
        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let states = groups.remove(&key).expect("group disappeared");
            let mut vals = key;
            for st in states {
                vals.push(st.finish());
            }
            rows.push(Tuple::new(vals));
        }
        Ok(ResultSet { schema, rows })
    }
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    fn output_type(self) -> ValueType {
        match self {
            AggFunc::Count => ValueType::Int,
            AggFunc::Avg => ValueType::Float,
            // Sum/Min/Max keep numeric flavour; declared Float for generality.
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => ValueType::Float,
        }
    }
}

/// One aggregate column request: function, input column, output name.
#[derive(Debug, Clone, Copy)]
pub struct AggSpec<'a> {
    pub func: AggFunc,
    pub col: &'a str,
    pub name: &'a str,
}

impl<'a> AggSpec<'a> {
    pub fn new(func: AggFunc, col: &'a str, name: &'a str) -> AggSpec<'a> {
        AggSpec { func, col, name }
    }
}

#[derive(Debug)]
enum AggState {
    Count(i64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, i64),
}

impl AggState {
    fn new(f: AggFunc) -> AggState {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0, false),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg(0.0, 0),
        }
    }

    fn feed(&mut self, v: &Value) -> Result<(), StorageError> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(acc, seen) => {
                if !v.is_null() {
                    *acc += v
                        .as_float()
                        .ok_or_else(|| StorageError::ExprType("sum of non-numeric".into()))?;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
            AggState::Avg(acc, n) => {
                if !v.is_null() {
                    *acc += v
                        .as_float()
                        .ok_or_else(|| StorageError::ExprType("avg of non-numeric".into()))?;
                    *n += 1;
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum(acc, seen) => {
                if seen {
                    Value::Float(acc)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg(acc, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(acc / n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn people() -> ResultSet {
        ResultSet::new(
            Schema::of(&[
                ("id", ValueType::Id),
                ("country", ValueType::Str),
                ("score", ValueType::Float),
            ]),
            vec![
                tuple![1u64, "jp", 0.9],
                tuple![2u64, "jp", 0.7],
                tuple![3u64, "fr", 0.8],
                tuple![4u64, "us", 0.4],
            ],
        )
    }

    fn tasks() -> ResultSet {
        ResultSet::new(
            Schema::of(&[("worker", ValueType::Id), ("task", ValueType::Str)]),
            vec![
                tuple![1u64, "translate"],
                tuple![1u64, "review"],
                tuple![3u64, "report"],
                tuple![9u64, "orphan"],
            ],
        )
    }

    #[test]
    fn filter_project() {
        let rs = people()
            .filter(&Expr::col(2).ge(Expr::lit(0.7)))
            .unwrap()
            .project(&["country"])
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.schema.arity(), 1);
    }

    #[test]
    fn filter_bad_column_errors() {
        assert!(people().project(&["nope"]).is_err());
    }

    #[test]
    fn hash_join_matches_pairs() {
        let rs = people().join(tasks(), &[("id", "worker")]).unwrap();
        assert_eq!(rs.len(), 3); // worker 1 twice, worker 3 once
        assert_eq!(rs.schema.arity(), 5);
        // join keeps left values then right values
        let first = &rs.rows[0];
        assert_eq!(first[0], Value::Id(1));
    }

    #[test]
    fn join_on_missing_column_errors() {
        assert!(people().join(tasks(), &[("id", "nope")]).is_err());
        assert!(people().join(tasks(), &[("nope", "worker")]).is_err());
    }

    #[test]
    fn null_keys_do_not_join() {
        let left = ResultSet::new(
            Schema::new(vec![Column::nullable("k", ValueType::Int)]).unwrap(),
            vec![tuple![Value::Null], tuple![1i64]],
        );
        let right = ResultSet::new(
            Schema::new(vec![Column::nullable("k", ValueType::Int)]).unwrap(),
            vec![tuple![Value::Null], tuple![1i64]],
        );
        let rs = left.join(right, &[("k", "k")]).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn distinct_removes_dupes_in_order() {
        let rs = ResultSet::new(
            Schema::of(&[("x", ValueType::Int)]),
            vec![tuple![2i64], tuple![1i64], tuple![2i64], tuple![3i64]],
        )
        .distinct();
        assert_eq!(rs.rows, vec![tuple![2i64], tuple![1i64], tuple![3i64]]);
    }

    #[test]
    fn sort_is_stable_and_ordered() {
        let rs = people().sort_by(&["country", "score"]).unwrap();
        let countries: Vec<&str> = rs.rows.iter().map(|r| r[1].as_str().unwrap()).collect();
        assert_eq!(countries, vec!["fr", "jp", "jp", "us"]);
        assert!(rs.rows[1][2] < rs.rows[2][2]);
    }

    #[test]
    fn aggregate_group_by() {
        let rs = people()
            .aggregate(
                &["country"],
                &[
                    AggSpec::new(AggFunc::Count, "", "n"),
                    AggSpec::new(AggFunc::Avg, "score", "avg_score"),
                    AggSpec::new(AggFunc::Max, "score", "best"),
                ],
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        // first-seen order: jp, fr, us
        assert_eq!(rs.rows[0][0], Value::Str("jp".into()));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert!(
            (rs.rows[0][2].as_float().unwrap() - 0.8).abs() < 1e-12,
            "avg of 0.9 and 0.7"
        );
        assert_eq!(rs.rows[0][3], Value::Float(0.9));
    }

    #[test]
    fn aggregate_global_no_groups() {
        let rs = people()
            .aggregate(
                &[],
                &[
                    AggSpec::new(AggFunc::Sum, "score", "total"),
                    AggSpec::new(AggFunc::Min, "score", "worst"),
                ],
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert!((rs.rows[0][0].as_float().unwrap() - 2.8).abs() < 1e-12);
        assert_eq!(rs.rows[0][1], Value::Float(0.4));
    }

    #[test]
    fn aggregate_empty_input() {
        let rs = ResultSet::new(Schema::of(&[("x", ValueType::Int)]), vec![])
            .aggregate(&[], &[AggSpec::new(AggFunc::Count, "", "n")])
            .unwrap();
        // With no rows there is no group at all, even for global aggregates.
        assert!(rs.is_empty());
    }

    #[test]
    fn aggregate_nulls_ignored() {
        let rs = ResultSet::new(
            Schema::new(vec![Column::nullable("x", ValueType::Int)]).unwrap(),
            vec![tuple![Value::Null], tuple![4i64]],
        )
        .aggregate(
            &[],
            &[
                AggSpec::new(AggFunc::Avg, "x", "a"),
                AggSpec::new(AggFunc::Count, "", "n"),
            ],
        )
        .unwrap();
        assert_eq!(rs.rows[0][0], Value::Float(4.0));
        assert_eq!(rs.rows[0][1], Value::Int(2)); // count counts rows
    }

    #[test]
    fn sum_of_strings_is_error() {
        let rs = ResultSet::new(Schema::of(&[("s", ValueType::Str)]), vec![tuple!["a"]]);
        assert!(rs
            .aggregate(&[], &[AggSpec::new(AggFunc::Sum, "s", "t")])
            .is_err());
    }
}
