//! # crowd4u-storage — relational substrate for the Crowd4U platform
//!
//! The production Crowd4U platform keeps workers, tasks, worker↔task
//! relationships and CyLog facts in a relational database. This crate is the
//! in-process equivalent: typed schemas, slab-backed relations with secondary
//! hash indexes, a small set of relational operators (filter / project /
//! hash-join / aggregate / sort / distinct), CSV import/export for
//! spreadsheet-defined tasks, and a textual snapshot format for persistence.
//!
//! Everything is deterministic: iteration orders are stable, snapshots are
//! canonical, and floats use a total order so they can appear in keys.
//!
//! ```
//! use crowd4u_storage::prelude::*;
//!
//! let mut db = Database::new();
//! let rel = db
//!     .create_relation(
//!         "worker",
//!         Schema::of(&[("id", ValueType::Id), ("lang", ValueType::Str)]),
//!     )
//!     .unwrap();
//! rel.create_index(&["id"], true).unwrap();
//! rel.insert(tuple![1u64, "en"]).unwrap();
//! rel.insert(tuple![2u64, "ja"]).unwrap();
//!
//! let english = db
//!     .scan("worker")
//!     .unwrap()
//!     .filter(&Expr::col(1).eq(Expr::lit("en")))
//!     .unwrap();
//! assert_eq!(english.len(), 1);
//! ```

pub mod csv;
pub mod database;
pub mod error;
pub mod expr;
pub mod journal;
pub mod query;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod tuple;
pub mod value;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::database::Database;
    pub use crate::error::StorageError;
    pub use crate::expr::{ArithOp, CmpOp, Expr};
    pub use crate::journal::{EventJournal, JournalEntry};
    pub use crate::query::{AggFunc, AggSpec, ResultSet};
    pub use crate::relation::{Relation, RowId};
    pub use crate::schema::{Column, Schema};
    pub use crate::tuple;
    pub use crate::tuple::Tuple;
    pub use crate::value::{Value, ValueType};
}

#[cfg(test)]
mod proptests {
    //! Property-based invariants of the storage layer.
    use crate::prelude::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite floats plus specials.
            prop_oneof![
                any::<f64>().prop_filter("finite", |f| f.is_finite()),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ]
            .prop_map(Value::Float),
            "[ -~]{0,12}".prop_map(Value::Str), // printable ascii incl. space
            any::<u64>().prop_map(Value::Id),
        ]
    }

    proptest! {
        /// Value ordering is a total order: antisymmetric + transitive on triples.
        #[test]
        fn value_order_total(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering;
            prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
            if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
                prop_assert_ne!(a.cmp(&c), Ordering::Greater);
            }
        }

        /// Equal values hash equally.
        #[test]
        fn value_hash_consistent(a in arb_value(), b in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            if a == b {
                let mut ha = DefaultHasher::new();
                let mut hb = DefaultHasher::new();
                a.hash(&mut ha);
                b.hash(&mut hb);
                prop_assert_eq!(ha.finish(), hb.finish());
            }
        }

        /// Indexed lookup returns exactly the same rows as a full scan filter.
        #[test]
        fn index_scan_equivalence(keys in proptest::collection::vec(0i64..20, 1..60)) {
            let mut indexed = Relation::new("t", Schema::of(&[("k", ValueType::Int), ("pos", ValueType::Int)]));
            indexed.create_index(&["k"], false).unwrap();
            let mut plain = Relation::new("t", Schema::of(&[("k", ValueType::Int), ("pos", ValueType::Int)]));
            for (i, k) in keys.iter().enumerate() {
                indexed.insert(tuple![*k, i as i64]).unwrap();
                plain.insert(tuple![*k, i as i64]).unwrap();
            }
            for probe in 0i64..20 {
                let mut via_index: Vec<Tuple> = indexed
                    .lookup(&[0], &[Value::Int(probe)])
                    .into_iter().cloned().collect();
                let mut via_scan: Vec<Tuple> = plain
                    .lookup(&[0], &[Value::Int(probe)])
                    .into_iter().cloned().collect();
                via_index.sort();
                via_scan.sort();
                prop_assert_eq!(via_index, via_scan);
            }
        }

        /// Deleting and reinserting arbitrary subsets keeps len and index in sync.
        #[test]
        fn delete_reinsert_consistency(ops in proptest::collection::vec((0i64..10, any::<bool>()), 0..80)) {
            let mut rel = Relation::new("t", Schema::of(&[("k", ValueType::Int)]));
            rel.create_index(&["k"], false).unwrap();
            let mut model: Vec<i64> = Vec::new();
            for (k, insert) in ops {
                if insert {
                    rel.insert(tuple![k]).unwrap();
                    model.push(k);
                } else if let Some(pos) = model.iter().position(|&m| m == k) {
                    model.remove(pos);
                    let victims: Vec<RowId> = rel
                        .iter_ids()
                        .filter(|(_, t)| t[0] == Value::Int(k))
                        .map(|(rid, _)| rid)
                        .take(1)
                        .collect();
                    for rid in victims { rel.delete(rid).unwrap(); }
                }
                prop_assert_eq!(rel.len(), model.len());
                for probe in 0i64..10 {
                    let expected = model.iter().filter(|&&m| m == probe).count();
                    prop_assert_eq!(rel.lookup(&[0], &[Value::Int(probe)]).len(), expected);
                }
            }
        }

        /// Snapshots round-trip any database contents exactly (canonical dump).
        #[test]
        fn snapshot_round_trip(rows in proptest::collection::vec(
            (any::<i64>(), "[ -~]{0,16}", proptest::option::of(any::<f64>().prop_filter("finite", |f| f.is_finite()))),
            0..40,
        )) {
            let mut db = Database::new();
            let rel = db.create_relation("r", Schema::new(vec![
                Column::new("a", ValueType::Int),
                Column::new("b", ValueType::Str),
                Column::nullable("c", ValueType::Float),
            ]).unwrap()).unwrap();
            for (a, b, c) in rows {
                let cv = c.map(Value::Float).unwrap_or(Value::Null);
                rel.insert(Tuple::new(vec![Value::Int(a), Value::Str(b), cv])).unwrap();
            }
            let text = crate::snapshot::dump(&db);
            let back = crate::snapshot::load(&text).unwrap();
            prop_assert_eq!(crate::snapshot::dump(&back), text);
        }

        /// CSV round-trips arbitrary records.
        #[test]
        fn csv_round_trip(recs in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,10}", 1..5), 1..20)) {
            let text = crate::csv::write_csv(&recs);
            let back = crate::csv::parse_csv(&text).unwrap();
            prop_assert_eq!(back, recs);
        }

        /// Filter + project never panic and preserve schema arity.
        #[test]
        fn filter_preserves_schema(vals in proptest::collection::vec((any::<i64>(), any::<i64>()), 0..50), cut in any::<i64>()) {
            let rs = ResultSet::new(
                Schema::of(&[("x", ValueType::Int), ("y", ValueType::Int)]),
                vals.iter().map(|(x, y)| tuple![*x, *y]).collect(),
            );
            let filtered = rs.filter(&Expr::col(0).lt(Expr::lit(cut))).unwrap();
            prop_assert_eq!(filtered.schema.arity(), 2);
            for row in &filtered.rows {
                prop_assert!(row[0].as_int().unwrap() < cut);
            }
            let expected = vals.iter().filter(|(x, _)| *x < cut).count();
            prop_assert_eq!(filtered.len(), expected);
        }
    }
}
