//! Error type shared by the storage crate.

use crate::value::ValueType;
use std::fmt;

/// All the ways a storage operation can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    DuplicateColumn(String),
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    TypeMismatch {
        column: String,
        expected: ValueType,
        got: Option<ValueType>,
    },
    NullViolation(String),
    ColumnIndexOutOfRange(usize),
    NoSuchColumn(String),
    NoSuchRelation(String),
    RelationExists(String),
    UniqueViolation {
        relation: String,
        key: String,
    },
    NoSuchRow(u64),
    /// An expression evaluated to a type unusable in its context.
    ExprType(String),
    /// Malformed CSV input.
    Csv {
        line: usize,
        message: String,
    },
    /// Malformed snapshot input.
    Snapshot {
        line: usize,
        message: String,
    },
    /// Malformed event-journal input, or an invalid entry kind.
    Journal {
        line: usize,
        message: String,
    },
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateColumn(n) => write!(f, "duplicate column `{n}`"),
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} values, got {got}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => match got {
                Some(g) => write!(f, "column `{column}` expects {expected}, got {g}"),
                None => write!(f, "column `{column}` expects {expected}, got null"),
            },
            StorageError::NullViolation(n) => {
                write!(f, "null value in non-nullable column `{n}`")
            }
            StorageError::ColumnIndexOutOfRange(i) => {
                write!(f, "column index {i} out of range")
            }
            StorageError::NoSuchColumn(n) => write!(f, "no such column `{n}`"),
            StorageError::NoSuchRelation(n) => write!(f, "no such relation `{n}`"),
            StorageError::RelationExists(n) => write!(f, "relation `{n}` already exists"),
            StorageError::UniqueViolation { relation, key } => {
                write!(f, "unique violation in `{relation}` on key {key}")
            }
            StorageError::NoSuchRow(id) => write!(f, "no such row id {id}"),
            StorageError::ExprType(m) => write!(f, "expression type error: {m}"),
            StorageError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            StorageError::Snapshot { line, message } => {
                write!(f, "snapshot error at line {line}: {message}")
            }
            StorageError::Journal { line, message } => {
                write!(f, "journal error at line {line}: {message}")
            }
            StorageError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<StorageError> = vec![
            StorageError::DuplicateColumn("x".into()),
            StorageError::ArityMismatch {
                expected: 2,
                got: 3,
            },
            StorageError::TypeMismatch {
                column: "c".into(),
                expected: ValueType::Int,
                got: Some(ValueType::Str),
            },
            StorageError::TypeMismatch {
                column: "c".into(),
                expected: ValueType::Int,
                got: None,
            },
            StorageError::NullViolation("c".into()),
            StorageError::ColumnIndexOutOfRange(9),
            StorageError::NoSuchColumn("q".into()),
            StorageError::NoSuchRelation("r".into()),
            StorageError::RelationExists("r".into()),
            StorageError::UniqueViolation {
                relation: "r".into(),
                key: "[1]".into(),
            },
            StorageError::NoSuchRow(1),
            StorageError::ExprType("bad".into()),
            StorageError::Csv {
                line: 3,
                message: "oops".into(),
            },
            StorageError::Snapshot {
                line: 4,
                message: "oops".into(),
            },
            StorageError::Journal {
                line: 5,
                message: "oops".into(),
            },
            StorageError::Io("gone".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn from_io_error() {
        let e = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let s: StorageError = e.into();
        assert!(matches!(s, StorageError::Io(_)));
    }
}
