//! Dynamically-typed values stored in relations.
//!
//! Crowd4U tables mix machine-produced facts (ids, scores) with
//! human-produced facts (free text, booleans from yes/no micro-tasks), so the
//! storage layer is dynamically typed like the production platform's
//! PostgreSQL schema. `Value` provides a *total* ordering and hashing even
//! for floats so that values can be used as join and index keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Type tag for a [`Value`]. `Null` is a member of every column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Bool,
    Int,
    Float,
    Str,
    /// Opaque entity identifier (worker id, task id, project id…).
    Id,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Id => "id",
        };
        f.write_str(s)
    }
}

impl ValueType {
    /// Parse the textual form produced by [`fmt::Display`].
    pub fn parse(s: &str) -> Option<ValueType> {
        match s {
            "bool" => Some(ValueType::Bool),
            "int" => Some(ValueType::Int),
            "float" => Some(ValueType::Float),
            "str" => Some(ValueType::Str),
            "id" => Some(ValueType::Id),
            _ => None,
        }
    }
}

/// A single dynamically-typed cell.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Id(u64),
}

impl Value {
    /// Runtime type of the value; `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Id(_) => Some(ValueType::Id),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value is `Null` or has exactly the given type.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(i) => Some(*i),
            _ => None,
        }
    }

    /// Stable discriminant used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
            Value::Id(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Id(a), Id(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally; hash both
            // through the canonical f64 bit pattern when the int is exactly
            // representable, otherwise through the integer.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                // Normalise -0.0 to 0.0 so equal values hash equally.
                let f = if *f == 0.0 { 0.0 } else { *f };
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Id(i) => {
                5u8.hash(state);
                i.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Id(i) => write!(f, "#{i}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Id(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_tags_round_trip() {
        for ty in [
            ValueType::Bool,
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
            ValueType::Id,
        ] {
            assert_eq!(ValueType::parse(&ty.to_string()), Some(ty));
        }
        assert_eq!(ValueType::parse("nonsense"), None);
    }

    #[test]
    fn null_conforms_to_everything() {
        for ty in [ValueType::Bool, ValueType::Int, ValueType::Str] {
            assert!(Value::Null.conforms_to(ty));
        }
        assert!(Value::Int(3).conforms_to(ValueType::Int));
        assert!(!Value::Int(3).conforms_to(ValueType::Str));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn negative_zero_and_nan_are_totally_ordered() {
        assert_eq!(Value::Float(0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
        // NaN is orderable (total order), equal to itself.
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn heterogeneous_ordering_is_stable() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Id(9),
        ];
        vals.sort();
        assert!(matches!(vals[0], Value::Null));
        assert!(matches!(vals[1], Value::Bool(_)));
        assert!(matches!(vals[4], Value::Id(_)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Id(4).as_id(), Some(4));
        assert_eq!(Value::Null.as_bool(), None);
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Id(12).to_string(), "#12");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(5u64), Value::Id(5));
    }
}
