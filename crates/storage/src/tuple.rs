//! Row representation.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// An immutable row of values. Boxed slice keeps the footprint at two words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values.into_boxed_slice())
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// New tuple keeping only the columns at `indices`, in order.
    /// Indices must be in range (checked by the caller against the schema).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenation of two tuples (for join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into_boxed_slice())
    }

    /// Extract the key values at the given columns (for indexes / joins).
    pub fn key(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&i| self.0[i].clone()).collect()
    }

    pub fn into_values(self) -> Vec<Value> {
        self.0.into_vec()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Build a tuple from heterogeneous literals: `tuple![1i64, "x", 0.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_values() {
        let t = tuple![1i64, "x", 0.5, true, 7u64];
        assert_eq!(t.arity(), 5);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t[1], Value::Str("x".into()));
        assert_eq!(t[4], Value::Id(7));
    }

    #[test]
    fn project_and_concat() {
        let t = tuple![1i64, "x", 0.5];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![0.5, 1i64]);
        let c = p.concat(&tuple![true]);
        assert_eq!(c, tuple![0.5, 1i64, true]);
    }

    #[test]
    fn key_extracts_in_order() {
        let t = tuple![10i64, 20i64, 30i64];
        assert_eq!(t.key(&[2, 1]), vec![Value::Int(30), Value::Int(20)]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1i64, "a"].to_string(), "(1, a)");
    }

    #[test]
    fn get_in_and_out_of_range() {
        let t = tuple![1i64];
        assert!(t.get(0).is_some());
        assert!(t.get(1).is_none());
    }
}
