//! Minimal RFC-4180-style CSV support for spreadsheet task import/export
//! (the paper's requesters "define tasks with a form-based user interface
//! and spreadsheets").

use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// Parse CSV text into records of string fields.
/// Handles quoted fields, embedded commas, doubled quotes and CRLF.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, StorageError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(StorageError::Csv {
                            line,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    if chars.peek() == Some(&'\n') {
                        continue; // handled by the \n branch
                    }
                    // lone CR treated as newline
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Serialise records to CSV text, quoting only when needed.
pub fn write_csv(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        for (i, f) in rec.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
                out.push('"');
                for c in f.chars() {
                    if c == '"' {
                        out.push('"');
                    }
                    out.push(c);
                }
                out.push('"');
            } else {
                out.push_str(f);
            }
        }
        out.push('\n');
    }
    out
}

/// Convert a CSV string field to a typed value according to a column type.
/// Empty fields become `Null`.
pub fn field_to_value(field: &str, ty: ValueType) -> Result<Value, StorageError> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    let err = |msg: String| StorageError::Csv {
        line: 0,
        message: msg,
    };
    match ty {
        ValueType::Bool => match field {
            "true" | "TRUE" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" | "no" => Ok(Value::Bool(false)),
            _ => Err(err(format!("cannot parse `{field}` as bool"))),
        },
        ValueType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(format!("cannot parse `{field}` as int"))),
        ValueType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("cannot parse `{field}` as float"))),
        ValueType::Str => Ok(Value::Str(field.to_owned())),
        ValueType::Id => field
            .strip_prefix('#')
            .unwrap_or(field)
            .parse::<u64>()
            .map(Value::Id)
            .map_err(|_| err(format!("cannot parse `{field}` as id"))),
    }
}

/// Parse a CSV document with a header row into tuples of `schema`.
/// The header must name exactly the schema columns (any order).
pub fn csv_to_rows(input: &str, schema: &Schema) -> Result<Vec<Tuple>, StorageError> {
    let records = parse_csv(input)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or(StorageError::Csv {
        line: 1,
        message: "missing header row".into(),
    })?;
    // Map file columns to schema positions.
    let mut mapping = Vec::with_capacity(header.len());
    for h in &header {
        mapping.push(
            schema
                .index_of(h)
                .ok_or_else(|| StorageError::NoSuchColumn(h.clone()))?,
        );
    }
    if mapping.len() != schema.arity() {
        return Err(StorageError::Csv {
            line: 1,
            message: format!(
                "header has {} columns, schema needs {}",
                mapping.len(),
                schema.arity()
            ),
        });
    }
    let mut rows = Vec::new();
    for (lineno, rec) in it.enumerate() {
        if rec.len() != mapping.len() {
            return Err(StorageError::Csv {
                line: lineno + 2,
                message: format!("expected {} fields, got {}", mapping.len(), rec.len()),
            });
        }
        let mut vals = vec![Value::Null; schema.arity()];
        for (f, &pos) in rec.iter().zip(&mapping) {
            let ty = schema.columns()[pos].ty;
            vals[pos] = field_to_value(f, ty).map_err(|e| match e {
                StorageError::Csv { message, .. } => StorageError::Csv {
                    line: lineno + 2,
                    message,
                },
                other => other,
            })?;
        }
        schema.check_row(&vals)?;
        rows.push(Tuple::new(vals));
    }
    Ok(rows)
}

/// Render rows of `schema` as CSV text with a header row.
pub fn rows_to_csv(schema: &Schema, rows: &[Tuple]) -> String {
    let mut records = Vec::with_capacity(rows.len() + 1);
    records.push(
        schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect::<Vec<_>>(),
    );
    for r in rows {
        records.push(
            r.values()
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    other => other.to_string(),
                })
                .collect(),
        );
    }
    write_csv(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::tuple;

    #[test]
    fn parse_simple() {
        let recs = parse_csv("a,b\n1,2\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parse_quoted_comma_and_newline() {
        let recs = parse_csv("\"x,y\",\"line1\nline2\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[0][0], "x,y");
        assert_eq!(recs[0][1], "line1\nline2");
        assert_eq!(recs[0][2], "he said \"hi\"");
    }

    #[test]
    fn parse_crlf_and_no_trailing_newline() {
        let recs = parse_csv("a,b\r\nc,d").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_csv("ab\"c\n"),
            Err(StorageError::Csv { .. })
        ));
        assert!(matches!(
            parse_csv("\"unterminated"),
            Err(StorageError::Csv { .. })
        ));
    }

    #[test]
    fn write_quotes_when_needed() {
        let out = write_csv(&[vec!["plain".into(), "a,b".into(), "q\"q".into()]]);
        assert_eq!(out, "plain,\"a,b\",\"q\"\"q\"\n");
    }

    #[test]
    fn csv_round_trip_preserves_records() {
        let recs = vec![
            vec!["a".to_string(), "b,c".to_string()],
            vec!["\"".to_string(), "x\ny".to_string()],
        ];
        let text = write_csv(&recs);
        assert_eq!(parse_csv(&text).unwrap(), recs);
    }

    #[test]
    fn field_parsing_by_type() {
        assert_eq!(
            field_to_value("true", ValueType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            field_to_value("no", ValueType::Bool).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            field_to_value("42", ValueType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            field_to_value("2.5", ValueType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(field_to_value("#7", ValueType::Id).unwrap(), Value::Id(7));
        assert_eq!(field_to_value("7", ValueType::Id).unwrap(), Value::Id(7));
        assert_eq!(field_to_value("", ValueType::Int).unwrap(), Value::Null);
        assert!(field_to_value("abc", ValueType::Int).is_err());
        assert!(field_to_value("maybe", ValueType::Bool).is_err());
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ValueType::Id),
            Column::new("title", ValueType::Str),
            Column::nullable("hours", ValueType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn csv_to_rows_with_reordered_header() {
        let rows =
            csv_to_rows("title,hours,id\ntranslate,1.5,#1\nreview,,#2\n", &schema()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple![1u64, "translate", 1.5]);
        assert_eq!(rows[1][2], Value::Null);
    }

    #[test]
    fn csv_to_rows_error_cases() {
        // unknown column
        assert!(csv_to_rows("bogus\n1\n", &schema()).is_err());
        // wrong field count
        assert!(csv_to_rows("id,title,hours\n#1,x\n", &schema()).is_err());
        // bad value with line number
        let err = csv_to_rows("id,title,hours\n#1,x,notafloat\n", &schema()).unwrap_err();
        match err {
            StorageError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        // null in non-nullable column
        assert!(csv_to_rows("id,title,hours\n,x,1.0\n", &schema()).is_err());
        // empty input
        assert!(csv_to_rows("", &schema()).is_err());
    }

    #[test]
    fn rows_to_csv_round_trip() {
        let s = schema();
        let rows = vec![tuple![1u64, "a,b", 0.5], tuple![2u64, "plain", Value::Null]];
        let text = rows_to_csv(&s, &rows);
        let back = csv_to_rows(&text, &s).unwrap();
        assert_eq!(back, rows);
    }
}
