//! Demo scenario 1 (§2.5): video subtitle generation and translation with
//! **sequential** collaboration — workers improve each other's
//! contributions through dynamically generated follow-up tasks
//! (transcribe → translate → review).
//!
//! Run with: `cargo run --example translation [crowd] [items] [seed]`

use crowd4u::core::controller::AlgorithmChoice;
use crowd4u::scenarios::{translation, ScenarioConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let crowd: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let items: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("video subtitle translation — sequential collaboration");
    println!("crowd={crowd} items={items} seed={seed}\n");

    for alg in [
        AlgorithmChoice::Greedy,
        AlgorithmChoice::LocalSearch,
        AlgorithmChoice::Exact,
    ] {
        // Exact team formation explodes on big pools; cap its candidates by
        // shrinking the crowd for that run (the assignment controller sees
        // only interested workers anyway).
        let crowd_for = if matches!(alg, AlgorithmChoice::Exact) {
            crowd.min(18)
        } else {
            crowd
        };
        let config = ScenarioConfig::default()
            .with_crowd(crowd_for)
            .with_items(items)
            .with_seed(seed)
            .with_algorithm(alg);
        match translation::run(&config) {
            Ok(report) => {
                println!("[{:>12}] {report}", format!("{alg:?}"));
                println!(
                    "               completion {:.0}%, {:.1} answers/item",
                    report.completion_rate() * 100.0,
                    report.answers as f64 / report.items_total.max(1) as f64
                );
            }
            Err(e) => println!("[{:>12}] failed: {e}", format!("{alg:?}")),
        }
    }
    println!(
        "\nsequential coordination pays per-item quality for makespan — compare\n\
         with `cargo run --example journalism` (simultaneous) on the same seed."
    );
}
