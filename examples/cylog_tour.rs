//! A tour of the CyLog language (§2.1): declarations, facts, rules,
//! negation, aggregation, and the defining feature — open predicates whose
//! facts come from humans.
//!
//! Run with: `cargo run --example cylog_tour`

use crowd4u::cylog::engine::CylogEngine;
use crowd4u::cylog::eval::EvalMode;
use crowd4u::forms::from_cylog::form_for_request;
use crowd4u::storage::prelude::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
// ---- closed relations (machine facts + derived rules) ----
rel edge(a: int, b: int).
rel path(a: int, b: int).
rel node(x: int).
rel unreachable(x: int).
rel reach_count(n: int).

edge(1, 2). edge(2, 3). edge(3, 4).
node(1). node(2). node(3). node(4). node(5).

path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).          // recursion (semi-naive)
unreachable(X) :- node(X), not path(1, X), X != 1.  // stratified negation
reach_count(count<X>) :- path(1, X).           // aggregation

// ---- the human side: open predicates ----
open label(x: int) -> (name: str) points 2.
rel labelled(x: int, name: str).
labelled(X, N) :- unreachable(X), label(X, N).
"#;

    let mut engine = CylogEngine::from_source(source)?;
    engine.run()?;

    println!("paths from 1: {:?}", engine.facts("path")?.rows.len());
    println!("reach_count = {}", engine.facts("reach_count")?.rows[0][0]);
    for row in &engine.facts("unreachable")?.rows {
        println!("unreachable node: {row}");
    }

    // The engine turned the `label` demand into crowd questions:
    println!("\npending crowd questions:");
    for req in engine.pending_requests().to_vec() {
        println!(
            "  {}({:?}) for {} points",
            req.pred_name, req.inputs, req.points
        );
        // …each of which renders as a task form (the worker UI):
        let form = form_for_request(engine.program(), &req);
        println!("{form}\n");
    }

    // A simulated worker answers; the dependent rule fires on the next run.
    engine.answer(
        "label",
        vec![Value::Int(5)],
        vec!["isolated-5".into()],
        Some(7),
    )?;
    engine.run()?;
    for row in &engine.facts("labelled")?.rows {
        println!("labelled: {row}");
    }
    println!("worker 7 earned {} points", engine.points_of(7));

    // Naive vs semi-naive produce identical fixpoints (ablation 1).
    let mut naive = CylogEngine::from_source(source)?;
    naive.set_mode(EvalMode::Naive);
    naive.run()?;
    assert_eq!(
        naive.facts("path")?.rows.len(),
        engine.facts("path")?.rows.len()
    );
    println!("\nnaive and semi-naive fixpoints agree ✓");
    let stats = engine.cumulative_stats();
    println!(
        "evaluation: {} rounds, {} facts derived, {} duplicate firings",
        stats.rounds, stats.derived, stats.duplicates
    );
    Ok(())
}
