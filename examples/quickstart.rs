//! Quickstart: the full Crowd4U deployment pipeline of paper Figure 1 —
//! task decomposition → task assignment → task completion — on a small
//! simulated crowd.
//!
//! Run with: `cargo run --example quickstart`

use crowd4u::collab::Scheme;
use crowd4u::core::pages::{admin_page, user_page};
use crowd4u::core::prelude::*;
use crowd4u::crowd::profile::{WorkerId, WorkerProfile};
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::storage::prelude::Value;

fn main() -> Result<(), PlatformError> {
    let mut platform = Crowd4U::new();

    // --- the crowd signs up, each with human factors (paper Fig. 4) ---
    for (i, (name, lang, skill)) in [
        ("ann", "en", 0.9),
        ("bob", "en", 0.7),
        ("chika", "ja", 0.8),
        ("dai", "ja", 0.6),
        ("emma", "fr", 0.75),
    ]
    .iter()
    .enumerate()
    {
        platform.register_worker(
            WorkerProfile::new(WorkerId(i as u64 + 1), *name)
                .with_native_lang(*lang)
                .with_skill("translation", *skill),
        );
    }
    println!("registered {} workers\n", platform.workers.len());

    // --- a requester registers a declarative project (CyLog, §2.1) ---
    let cylog = "\
rel sentence(sid: id, text: str).
open translate(sid: id, text: str) -> (translated: str) points 3.
rel published(sid: id, translated: str).
published(S, T) :- sentence(S, X), translate(S, X, T).
";
    let factors = DesiredFactors {
        skill_name: Some("translation".into()),
        min_quality: 0.6,
        min_team: 2,
        max_team: 3,
        ..Default::default()
    };
    let project = platform.register_project("quickstart", cylog, factors, Scheme::Sequential)?;

    // --- decomposition: sentences become micro-tasks via CyLog demands ---
    for (i, text) in ["hello world", "good morning", "see you soon"]
        .iter()
        .enumerate()
    {
        platform.seed_fact(
            project,
            "sentence",
            vec![Value::Id(i as u64 + 1), Value::Str((*text).into())],
        )?;
    }
    let generated = platform.sync_tasks(project)?;
    println!("CyLog processor generated {generated} micro-tasks\n");

    // --- a worker's view (user page) ---
    println!("{}", user_page(&platform, WorkerId(1))?);

    // --- workers answer the open questions ---
    let open: Vec<TaskId> = platform
        .pool
        .open_tasks(Some(project))
        .iter()
        .map(|t| t.id)
        .collect();
    for (k, task) in open.iter().enumerate() {
        let worker = WorkerId((k % 2) as u64 + 1);
        let inputs = match &platform.pool.get(*task)?.body {
            TaskBody::Micro { inputs, .. } => inputs.clone(),
            _ => continue,
        };
        let translated = format!("[fr] {}", inputs[1]);
        platform.submit_micro_answer(worker, *task, vec![Value::Str(translated)])?;
    }
    platform.sync_tasks(project)?;

    // --- team assignment for a collaborative task (workflow §2.2.1) ---
    let team_task = platform.create_collab_task(project, "review the whole subtitle file")?;
    for w in platform.workers.ids() {
        if platform.relations.is_eligible(w, team_task) {
            platform.express_interest(w, team_task)?;
        }
    }
    match platform.run_assignment(team_task) {
        Ok(team) => {
            println!("suggested team: {team}");
            for &m in &team.members {
                platform.undertake(m, team_task)?;
            }
            platform.complete_collab_task(team_task, 0.85)?;
            println!("collaborative task completed by the team\n");
        }
        Err(PlatformError::NoFeasibleTeam { .. }) => {
            println!("no feasible team — requester should relax constraints\n");
        }
        Err(e) => return Err(e),
    }

    // --- results & bookkeeping ---
    let published = platform.project(project)?.engine.facts("published")?;
    println!("published translations:");
    for row in &published.rows {
        println!("  {row}");
    }
    println!();
    println!(
        "{}",
        admin_page(&platform, project, &["translation"], &["en", "ja", "fr"])?
    );
    println!("\nplatform counters:\n{}", platform.counters);
    Ok(())
}
