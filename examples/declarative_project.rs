//! A fully declarative project: the CyLog description defines *both* the
//! task data-flow and the eligibility policy (§2.2: Eligible "is computed
//! by the CyLog processor using the project description and worker human
//! factors"), while a pluggable decomposer breaks the source document into
//! micro-task seeds (§2.1: "Crowd4U can use any task decomposition
//! algorithm").
//!
//! Run with: `cargo run --example declarative_project`

use crowd4u::collab::Scheme;
use crowd4u::core::prelude::*;
use crowd4u::crowd::profile::{WorkerId, WorkerProfile};
use crowd4u::forms::admin::DesiredFactors;
use crowd4u::storage::prelude::Value;

const PROJECT: &str = "\
// --- who may work: only logged-in native English speakers (§2.2) ---
rel worker_online(w: id).
rel worker_native(w: id, lang: str).
rel eligible(w: id).
eligible(W) :- worker_online(W), worker_native(W, \"en\").

// --- what to do: caption every sentence of the announcement ---
rel sentence(sid: id, text: str).
open caption(sid: id, text: str) -> (caption: str) points 2.
rel captioned(sid: id, caption: str).
captioned(S, C) :- sentence(S, T), caption(S, T, C).
rel progress(n: int).
progress(count<S>) :- captioned(S, _).
";

fn main() -> Result<(), PlatformError> {
    let mut platform = Crowd4U::new();
    platform.register_worker(WorkerProfile::new(WorkerId(1), "ann").with_native_lang("en"));
    platform.register_worker(WorkerProfile::new(WorkerId(2), "bea").with_native_lang("en"));
    platform.register_worker(WorkerProfile::new(WorkerId(3), "chie").with_native_lang("ja"));

    let project = platform.register_project(
        "announcement captions",
        PROJECT,
        DesiredFactors::default(),
        Scheme::Sequential,
    )?;
    println!(
        "project uses declarative eligibility: {}\n",
        uses_declarative_eligibility(&platform.project(project)?.engine)
    );

    // Decompose the source document into sentences with a pluggable algorithm.
    let document = "Crowd4U is open to everyone. Tasks are declarative! \
                    Teams form on affinity. Join us today?";
    let splitter: Box<dyn Decomposer> = Box::new(SentenceSplitter);
    for piece in splitter.decompose(document) {
        println!("decomposed {piece}");
        platform.seed_fact(
            project,
            "sentence",
            vec![Value::Id(piece.index as u64 + 1), Value::Str(piece.content)],
        )?;
    }
    let n = platform.sync_tasks(project)?;
    println!("\n{n} micro-tasks registered");

    // The Japanese speaker is filtered out *by the CyLog rules*.
    let task = platform.pool.open_tasks(Some(project))[0].id;
    println!(
        "eligible for {task}: {:?}",
        platform.relations.eligible_workers(task)
    );

    // The eligible workers caption everything, alternating.
    let open: Vec<TaskId> = platform
        .pool
        .open_tasks(Some(project))
        .iter()
        .map(|t| t.id)
        .collect();
    for (k, t) in open.iter().enumerate() {
        let worker = WorkerId(1 + (k % 2) as u64);
        let text = match &platform.pool.get(*t)?.body {
            TaskBody::Micro { inputs, .. } => inputs[1].to_string(),
            _ => continue,
        };
        platform.submit_micro_answer(worker, *t, vec![Value::Str(format!("[CC] {text}"))])?;
    }
    platform.sync_tasks(project)?;

    let engine = &platform.project(project)?.engine;
    println!("\nprogress: {}", engine.facts("progress")?.rows[0][0]);
    for row in &engine.facts("captioned")?.rows {
        println!("  {row}");
    }
    println!(
        "\npoints: ann={} bea={} chie={}",
        platform.points_of(WorkerId(1)),
        platform.points_of(WorkerId(2)),
        platform.points_of(WorkerId(3)),
    );
    Ok(())
}
