//! Team formation standalone (§2.2): compare every assignment algorithm on
//! one instance — the NP-complete affinity-max clique problem with critical
//! mass, quality and cost constraints — and show the Grp&Split path for
//! decomposable parallel tasks.
//!
//! Run with: `cargo run --release --example team_formation [n] [seed]`

use crowd4u::assign::prelude::*;
use crowd4u::crowd::affinity::AffinityMatrix;
use crowd4u::crowd::profile::WorkerId;
use crowd4u::sim::rng::SimRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    // Build a clustered instance: 3 communities with high intra-affinity.
    let mut rng = SimRng::seed_from(seed);
    let cands: Vec<Candidate> = (0..n as u64)
        .map(|i| {
            Candidate::new(
                WorkerId(i),
                rng.range_f64(0.3, 1.0),
                rng.range_f64(0.0, 2.0),
            )
        })
        .collect();
    let mut aff = AffinityMatrix::new(cands.iter().map(|c| c.id).collect());
    for i in 0..n {
        for j in (i + 1)..n {
            let same = (i % 3) == (j % 3);
            let base = if same { 0.75 } else { 0.15 };
            aff.set(
                WorkerId(i as u64),
                WorkerId(j as u64),
                (base + 0.15 * rng.gaussian()).clamp(0.0, 1.0),
            );
        }
    }
    let constraints = TeamConstraints::sized(3, 5)
        .with_quality(0.4)
        .with_budget(8.0);
    println!(
        "instance: {n} workers, 3 latent communities, teams of 3–5, \
         mean skill ≥ 0.4, budget 8.0\n"
    );

    let algorithms: Vec<Box<dyn TeamFormation>> = vec![
        Box::new(ExactBB::default()),
        Box::new(ExactBB::without_pruning()),
        Box::new(GreedyAff::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomTeam::new(seed)),
    ];
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>12}  members",
        "algorithm", "affinity", "quality", "cost", "time"
    );
    for alg in &algorithms {
        if n > 22 && alg.name().starts_with("exact") {
            println!(
                "{:<18} {:>9} — skipped (combinatorial blow-up)",
                alg.name(),
                ""
            );
            continue;
        }
        let start = Instant::now();
        match alg.form(&cands, &aff, &constraints) {
            Some(team) => println!(
                "{:<18} {:>9.3} {:>9.3} {:>7.1} {:>12.2?}  {:?}",
                alg.name(),
                team.affinity,
                team.quality,
                team.cost,
                start.elapsed(),
                team.members.iter().map(|m| m.0).collect::<Vec<_>>(),
            ),
            None => println!("{:<18} no feasible team", alg.name()),
        }
    }

    // Decomposable parallel task: one group per sub-task (Grp&Split, §2.2).
    println!("\nGrp&Split for a 3-section parallel document:");
    match GrpSplit::new(3).split(&cands, &aff, &TeamConstraints::sized(2, 4)) {
        Some(split) => {
            for (i, g) in split.groups.iter().enumerate() {
                println!("  section {i}: {g}");
            }
            println!(
                "  mean intra-group affinity {:.3}, merge-channel affinity {:.3}",
                split.mean_group_affinity(),
                split.merge_affinity
            );
        }
        None => println!("  pool too small for 3 groups"),
    }
}
