//! Spreadsheet-driven task definition (§2.1): a requester uploads a CSV of
//! items; each row seeds the CyLog database and becomes a crowd question;
//! answers are exported back to CSV.
//!
//! Run with: `cargo run --example spreadsheet_import`

use crowd4u::cylog::engine::CylogEngine;
use crowd4u::forms::spreadsheet::{export_csv, import_csv};
use crowd4u::storage::prelude::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = CylogEngine::from_source(
        "rel photo(pid: id, url: str).\n\
         open tag(pid: id, url: str) -> (animal: str, cute: bool) points 1.\n\
         rel cute_animals(pid: id, animal: str).\n\
         cute_animals(P, A) :- photo(P, U), tag(P, U, A, C), C = true.\n",
    )?;

    // The requester's spreadsheet (columns may be in any order).
    let sheet = "\
url,pid
https://example.net/cat.jpg,#1
https://example.net/dog.jpg,#2
https://example.net/rock.jpg,#3
";
    let added = import_csv(&mut engine, "photo", sheet)?;
    println!("imported {added} rows from the spreadsheet");

    engine.run()?;
    println!(
        "crowd questions generated: {}",
        engine.pending_requests().len()
    );

    // Simulated workers tag the photos.
    let answers = [(1u64, "cat", true), (2, "dog", true), (3, "rock", false)];
    for (pid, animal, cute) in answers {
        let url = format!(
            "https://example.net/{}.jpg",
            if pid == 3 { "rock" } else { animal }
        );
        engine.answer(
            "tag",
            vec![Value::Id(pid), Value::Str(url)],
            vec![Value::Str(animal.into()), Value::Bool(cute)],
            Some(100 + pid),
        )?;
    }
    engine.run()?;

    // Export results back to the requester as CSV.
    let out = export_csv(&engine, "cute_animals")?;
    println!("\ncute_animals.csv:\n{out}");
    println!("leaderboard: {:?}", engine.leaderboard());
    Ok(())
}
