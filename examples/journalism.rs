//! Demo scenario 2 (§2.5): citizen journalism with **simultaneous**
//! collaboration — the team exchanges SNS ids, then writes different parts
//! of the same report in a shared workspace (the paper's Figure 5 flow);
//! one member submits on behalf of the team.
//!
//! Run with: `cargo run --example journalism [crowd] [topics] [seed]`

use crowd4u::scenarios::{journalism, ScenarioConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let crowd: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let topics: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("citizen journalism — simultaneous collaboration");
    println!("crowd={crowd} topics={topics} seed={seed}\n");

    let config = ScenarioConfig::default()
        .with_crowd(crowd)
        .with_items(topics)
        .with_seed(seed);
    match journalism::run(&config) {
        Ok(report) => {
            println!("{report}\n");
            println!(
                "{} of {} topics produced a team report; mean team affinity {:.3}",
                report.items_completed, report.items_total, report.mean_team_affinity
            );
            println!(
                "parallel writing keeps makespan low: {} total for {} reports",
                report.makespan, report.items_completed
            );
            if report.reassignments > 0 {
                println!(
                    "{} recruitment deadlines were missed and re-assigned (§2.2.1)",
                    report.reassignments
                );
            }
        }
        Err(e) => println!("scenario failed: {e}"),
    }
}
