//! Demo scenario 3 (§2.5): surveillance with **hybrid** coordination —
//! team members collect facts sequentially, correcting each other's
//! observations, while independent witnesses testify simultaneously; the
//! two tracks join into one report per region.
//!
//! Run with: `cargo run --example surveillance [crowd] [regions] [seed]`

use crowd4u::scenarios::{surveillance, ScenarioConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let crowd: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let regions: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("surveillance — hybrid coordination");
    println!("crowd={crowd} regions={regions} seed={seed}\n");

    let config = ScenarioConfig::default()
        .with_crowd(crowd)
        .with_items(regions)
        .with_seed(seed);
    match surveillance::run(&config) {
        Ok(report) => {
            println!("{report}\n");
            println!(
                "{}/{} regions verified as credible; overall quality {:.3}",
                report.items_completed, report.items_total, report.mean_quality
            );
            println!(
                "affinity-aware teams (same-area workers pair better, §2.2.1): \
                 mean team affinity {:.3}",
                report.mean_team_affinity
            );
        }
        Err(e) => println!("scenario failed: {e}"),
    }
}
